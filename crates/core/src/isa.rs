//! The PIM instruction set architecture (Sections III-C and IV, Tables II
//! and III).
//!
//! Nine 32-bit RISC-style instructions in three classes:
//!
//! * flow control — `NOP`, `JUMP`, `EXIT`;
//! * arithmetic — `ADD`, `MUL`, `MAC`, `MAD`;
//! * data movement — `MOV` (with an optional ReLU flag) and `FILL`.
//!
//! # Bit layout
//!
//! The paper's Table III gives the field order but not every bit boundary;
//! this module fixes a concrete layout consistent with it (`U` = unused):
//!
//! ```text
//! ALU / Data:
//!   [31:28] OPCODE   [27:25] DST  [24:22] SRC0  [21:19] SRC1  [18:16] SRC2
//!   [15] A (AAM)  [14] U  [13] R (ReLU)  [12:11] U
//!   [10:8] DST#   [7] U  [6:4] SRC0#   [3] U  [2:0] SRC1#
//! Control:
//!   [31:28] OPCODE   [27:17] IMM0 (jump target)   [16:0] IMM1 (count)
//! ```
//!
//! Operand-kind encoding: `GRF_A=0, GRF_B=1, EVEN_BANK=2, ODD_BANK=3,
//! SRF_M=4, SRF_A=5, WDATA=6`. `WDATA` is the DRAM write datapath, the
//! operand a `WR`-triggered instruction consumes (and the second operand of
//! the PIM-HBM-SRW variant of Section VII-D).
//!
//! # Table II reproduction
//!
//! [`combination_counts`] enumerates every legal operand combination under
//! the structural rules of the microarchitecture and reproduces the paper's
//! counts exactly — MUL 32, ADD 40, MAC 14, MAD 28, MOV 24, i.e. "a total
//! of 114 operand combinations for computations, and 24 different ways of
//! data movement". The rules are:
//!
//! 1. at most one bank operand per instruction (one bank access per unit
//!    per trigger, Section IV-A);
//! 2. at most one scalar (SRF) operand per instruction (one scalar
//!    broadcast port);
//! 3. for the accumulating forms MAC / MAD, the two sources must not name
//!    the same GRF file (the accumulator occupies that file's port);
//! 4. MAC's destination is the accumulator itself (`SRC2 == DST`), so it
//!    contributes no independent destination choice.

use std::fmt;

/// Where an operand comes from or a result goes (3-bit field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OperandKind {
    /// General register file A (serves the even bank).
    GrfA,
    /// General register file B (serves the odd bank).
    GrfB,
    /// The even bank's row buffer at the triggering (row, column).
    EvenBank,
    /// The odd bank's row buffer at the triggering (row, column).
    OddBank,
    /// Scalar register file M (multiplication scalars), broadcast 16×.
    SrfM,
    /// Scalar register file A (addition scalars), broadcast 16×.
    SrfA,
    /// The 32-byte block on the DRAM write datapath (WR triggers only).
    Wdata,
}

impl OperandKind {
    /// All operand kinds.
    pub const ALL: [OperandKind; 7] = [
        OperandKind::GrfA,
        OperandKind::GrfB,
        OperandKind::EvenBank,
        OperandKind::OddBank,
        OperandKind::SrfM,
        OperandKind::SrfA,
        OperandKind::Wdata,
    ];

    /// 3-bit field encoding.
    pub fn encode(self) -> u32 {
        match self {
            OperandKind::GrfA => 0,
            OperandKind::GrfB => 1,
            OperandKind::EvenBank => 2,
            OperandKind::OddBank => 3,
            OperandKind::SrfM => 4,
            OperandKind::SrfA => 5,
            OperandKind::Wdata => 6,
        }
    }

    /// Decodes a 3-bit field.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BadOperandKind`] for the reserved encoding 7.
    pub fn decode(bits: u32) -> Result<OperandKind, DecodeError> {
        match bits & 0x7 {
            0 => Ok(OperandKind::GrfA),
            1 => Ok(OperandKind::GrfB),
            2 => Ok(OperandKind::EvenBank),
            3 => Ok(OperandKind::OddBank),
            4 => Ok(OperandKind::SrfM),
            5 => Ok(OperandKind::SrfA),
            6 => Ok(OperandKind::Wdata),
            _ => Err(DecodeError::BadOperandKind(bits & 0x7)),
        }
    }

    /// `true` for the two bank operands.
    pub fn is_bank(self) -> bool {
        matches!(self, OperandKind::EvenBank | OperandKind::OddBank)
    }

    /// `true` for the two scalar-register operands.
    pub fn is_srf(self) -> bool {
        matches!(self, OperandKind::SrfM | OperandKind::SrfA)
    }

    /// `true` for the two general-register operands.
    pub fn is_grf(self) -> bool {
        matches!(self, OperandKind::GrfA | OperandKind::GrfB)
    }

    /// The assembly mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            OperandKind::GrfA => "GRF_A",
            OperandKind::GrfB => "GRF_B",
            OperandKind::EvenBank => "EVEN_BANK",
            OperandKind::OddBank => "ODD_BANK",
            OperandKind::SrfM => "SRF_M",
            OperandKind::SrfA => "SRF_A",
            OperandKind::Wdata => "WDATA",
        }
    }
}

impl fmt::Display for OperandKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An operand reference: a kind plus a 3-bit register index (ignored for
/// bank and WDATA operands, whose "index" is the triggering column address).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Operand {
    /// Source/destination kind.
    pub kind: OperandKind,
    /// Register index (0..8); meaningful for GRF/SRF kinds only.
    pub idx: u8,
}

impl Operand {
    /// Creates an operand reference.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 8` (the # fields are 3 bits; GRF_A/GRF_B/SRF_M/
    /// SRF_A each have 8 entries, Table IV).
    pub fn new(kind: OperandKind, idx: u8) -> Operand {
        assert!(idx < 8, "register index {idx} out of range (3-bit field)");
        Operand { kind, idx }
    }

    /// A GRF_A register.
    pub fn grf_a(idx: u8) -> Operand {
        Operand::new(OperandKind::GrfA, idx)
    }

    /// A GRF_B register.
    pub fn grf_b(idx: u8) -> Operand {
        Operand::new(OperandKind::GrfB, idx)
    }

    /// The even bank at the triggering address.
    pub fn even_bank() -> Operand {
        Operand::new(OperandKind::EvenBank, 0)
    }

    /// The odd bank at the triggering address.
    pub fn odd_bank() -> Operand {
        Operand::new(OperandKind::OddBank, 0)
    }

    /// An SRF_M register.
    pub fn srf_m(idx: u8) -> Operand {
        Operand::new(OperandKind::SrfM, idx)
    }

    /// An SRF_A register.
    pub fn srf_a(idx: u8) -> Operand {
        Operand::new(OperandKind::SrfA, idx)
    }

    /// The write-data bus.
    pub fn wdata() -> Operand {
        Operand::new(OperandKind::Wdata, 0)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.kind.is_bank() || self.kind == OperandKind::Wdata {
            write!(f, "{}", self.kind)
        } else {
            write!(f, "{}[{}]", self.kind, self.idx)
        }
    }
}

/// The nine PIM instructions (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// No operation for `cycles` consecutive triggers ("multi-cycle NOP",
    /// Section III-C). `cycles == 0` is not meaningful and decodes as 1.
    Nop {
        /// Number of triggers consumed.
        cycles: u32,
    },
    /// Zero-cycle loop: jump back to CRF entry `target`; the loop body
    /// executes `count` times in total (the jump is taken `count - 1`
    /// times).
    Jump {
        /// CRF index of the loop head (0..32).
        target: u8,
        /// Total body iterations.
        count: u32,
    },
    /// Halt the PIM unit until the program counter is reset.
    Exit,
    /// `dst = src` (256-bit move); if `relu`, apply the ReLU sign-bit mux
    /// during the move ("MOV(ReLU)").
    Mov {
        /// Destination.
        dst: Operand,
        /// Source.
        src: Operand,
        /// Apply ReLU ('R' bit of Table III).
        relu: bool,
        /// Address-aligned mode ('A' bit).
        aam: bool,
    },
    /// `dst = src` specialized for loading registers from the bank or the
    /// write-data bus.
    Fill {
        /// Destination register.
        dst: Operand,
        /// Source.
        src: Operand,
        /// Address-aligned mode.
        aam: bool,
    },
    /// `dst = src0 + src1`.
    Add {
        /// Destination (GRF).
        dst: Operand,
        /// First addend.
        src0: Operand,
        /// Second addend.
        src1: Operand,
        /// Address-aligned mode.
        aam: bool,
    },
    /// `dst = src0 * src1`.
    Mul {
        /// Destination (GRF).
        dst: Operand,
        /// Multiplicand.
        src0: Operand,
        /// Multiplier.
        src1: Operand,
        /// Address-aligned mode.
        aam: bool,
    },
    /// `dst += src0 * src1` — the accumulator is the destination register
    /// itself (SRC2 == DST, Section III-C).
    Mac {
        /// Accumulator and destination (GRF).
        dst: Operand,
        /// Multiplicand.
        src0: Operand,
        /// Multiplier.
        src1: Operand,
        /// Address-aligned mode.
        aam: bool,
    },
    /// `dst = src0 * src1 + SRF_A[src1.idx]` — "SRC1 # and SRC2 # point to
    /// the same register index but in different register files" (Section
    /// III-C).
    Mad {
        /// Destination (GRF).
        dst: Operand,
        /// Multiplicand.
        src0: Operand,
        /// Multiplier.
        src1: Operand,
        /// Address-aligned mode.
        aam: bool,
    },
}

/// Why a 32-bit word failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode nibble.
    BadOpcode(u32),
    /// Reserved operand-kind encoding.
    BadOperandKind(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#x}"),
            DecodeError::BadOperandKind(k) => write!(f, "reserved operand kind {k}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const OP_NOP: u32 = 0x0;
const OP_JUMP: u32 = 0x1;
const OP_EXIT: u32 = 0x2;
const OP_MOV: u32 = 0x3;
const OP_FILL: u32 = 0x4;
const OP_ADD: u32 = 0x5;
const OP_MUL: u32 = 0x6;
const OP_MAC: u32 = 0x7;
const OP_MAD: u32 = 0x8;

fn encode_fields(
    opcode: u32,
    dst: Operand,
    src0: Operand,
    src1: Option<Operand>,
    aam: bool,
    relu: bool,
) -> u32 {
    let s1 = src1.unwrap_or(Operand { kind: OperandKind::GrfA, idx: 0 });
    (opcode << 28)
        | (dst.kind.encode() << 25)
        | (src0.kind.encode() << 22)
        | (s1.kind.encode() << 19)
        | ((aam as u32) << 15)
        | ((relu as u32) << 13)
        | ((dst.idx as u32) << 8)
        | ((src0.idx as u32) << 4)
        | (s1.idx as u32)
}

fn decode_operand(word: u32, kind_shift: u32, idx_shift: u32) -> Result<Operand, DecodeError> {
    let kind = OperandKind::decode((word >> kind_shift) & 0x7)?;
    let idx = ((word >> idx_shift) & 0x7) as u8;
    Ok(Operand { kind, idx })
}

impl Instruction {
    /// Encodes to the 32-bit instruction word of Table III.
    ///
    /// ```
    /// use pim_core::isa::{Instruction, Operand};
    /// let i = Instruction::Mac {
    ///     dst: Operand::grf_b(2),
    ///     src0: Operand::even_bank(),
    ///     src1: Operand::srf_m(2),
    ///     aam: true,
    /// };
    /// assert_eq!(Instruction::decode(i.encode()), Ok(i));
    /// ```
    pub fn encode(&self) -> u32 {
        match *self {
            Instruction::Nop { cycles } => (OP_NOP << 28) | (cycles & 0x1FFFF),
            Instruction::Jump { target, count } => {
                (OP_JUMP << 28) | (((target as u32) & 0x7FF) << 17) | (count & 0x1FFFF)
            }
            Instruction::Exit => OP_EXIT << 28,
            Instruction::Mov { dst, src, relu, aam } => {
                encode_fields(OP_MOV, dst, src, None, aam, relu)
            }
            Instruction::Fill { dst, src, aam } => {
                encode_fields(OP_FILL, dst, src, None, aam, false)
            }
            Instruction::Add { dst, src0, src1, aam } => {
                encode_fields(OP_ADD, dst, src0, Some(src1), aam, false)
            }
            Instruction::Mul { dst, src0, src1, aam } => {
                encode_fields(OP_MUL, dst, src0, Some(src1), aam, false)
            }
            Instruction::Mac { dst, src0, src1, aam } => {
                encode_fields(OP_MAC, dst, src0, Some(src1), aam, false)
            }
            Instruction::Mad { dst, src0, src1, aam } => {
                encode_fields(OP_MAD, dst, src0, Some(src1), aam, false)
            }
        }
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for unknown opcodes or reserved operand
    /// kinds.
    pub fn decode(word: u32) -> Result<Instruction, DecodeError> {
        let opcode = word >> 28;
        match opcode {
            OP_NOP => {
                let cycles = word & 0x1FFFF;
                Ok(Instruction::Nop { cycles: cycles.max(1) })
            }
            OP_JUMP => Ok(Instruction::Jump {
                target: ((word >> 17) & 0x7FF) as u8,
                count: word & 0x1FFFF,
            }),
            OP_EXIT => Ok(Instruction::Exit),
            OP_MOV | OP_FILL | OP_ADD | OP_MUL | OP_MAC | OP_MAD => {
                let dst = decode_operand(word, 25, 8)?;
                let src0 = decode_operand(word, 22, 4)?;
                let src1 = decode_operand(word, 19, 0)?;
                let aam = (word >> 15) & 1 == 1;
                let relu = (word >> 13) & 1 == 1;
                Ok(match opcode {
                    OP_MOV => Instruction::Mov { dst, src: src0, relu, aam },
                    OP_FILL => Instruction::Fill { dst, src: src0, aam },
                    OP_ADD => Instruction::Add { dst, src0, src1, aam },
                    OP_MUL => Instruction::Mul { dst, src0, src1, aam },
                    OP_MAC => Instruction::Mac { dst, src0, src1, aam },
                    _ => Instruction::Mad { dst, src0, src1, aam },
                })
            }
            other => Err(DecodeError::BadOpcode(other)),
        }
    }

    /// `true` for flow-control instructions (NOP/JUMP/EXIT).
    pub fn is_control(&self) -> bool {
        matches!(self, Instruction::Nop { .. } | Instruction::Jump { .. } | Instruction::Exit)
    }

    /// `true` for arithmetic instructions (ADD/MUL/MAC/MAD).
    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self,
            Instruction::Add { .. }
                | Instruction::Mul { .. }
                | Instruction::Mac { .. }
                | Instruction::Mad { .. }
        )
    }

    /// The address-aligned-mode flag, if the instruction class carries one.
    pub fn aam(&self) -> bool {
        match *self {
            Instruction::Mov { aam, .. }
            | Instruction::Fill { aam, .. }
            | Instruction::Add { aam, .. }
            | Instruction::Mul { aam, .. }
            | Instruction::Mac { aam, .. }
            | Instruction::Mad { aam, .. } => aam,
            _ => false,
        }
    }

    /// Validates the operand combination against the structural rules of
    /// the microarchitecture (see module docs).
    ///
    /// # Errors
    ///
    /// Returns the violated rule as a typed [`ValidateError`]; its
    /// `Display` form is a human-readable description.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let check =
            |dst: Operand, srcs: &[Operand], accumulating: bool| -> Result<(), ValidateError> {
                if !dst.kind.is_grf() && !dst.kind.is_bank() && !dst.kind.is_srf() {
                    return Err(ValidateError::BadDestination(dst.kind));
                }
                let banks =
                    srcs.iter().filter(|o| o.kind.is_bank()).count() + dst.kind.is_bank() as usize;
                if banks > 1 {
                    return Err(ValidateError::MultipleBankOperands);
                }
                let srfs = srcs.iter().filter(|o| o.kind.is_srf()).count();
                if srfs > 1 {
                    return Err(ValidateError::MultipleScalarOperands);
                }
                if accumulating
                    && srcs.len() == 2
                    && srcs[0].kind.is_grf()
                    && srcs[0].kind == srcs[1].kind
                {
                    return Err(ValidateError::SameGrfFileTwice);
                }
                Ok(())
            };
        match *self {
            Instruction::Nop { .. } | Instruction::Exit => Ok(()),
            Instruction::Jump { target, count } => {
                if target >= 32 {
                    return Err(ValidateError::JumpTargetOutOfRange(target));
                }
                if count == 0 {
                    return Err(ValidateError::JumpZeroCount);
                }
                Ok(())
            }
            Instruction::Mov { dst, src, .. } | Instruction::Fill { dst, src, .. } => {
                check(dst, &[src], false)
            }
            Instruction::Add { dst, src0, src1, .. } => {
                if !dst.kind.is_grf() {
                    return Err(ValidateError::NonGrfDestination("ADD"));
                }
                check(dst, &[src0, src1], false)
            }
            Instruction::Mul { dst, src0, src1, .. } => {
                if !dst.kind.is_grf() {
                    return Err(ValidateError::NonGrfDestination("MUL"));
                }
                if src0.kind.is_srf() || src1.kind == OperandKind::SrfA {
                    return Err(ValidateError::ScalarOperandMisplaced("MUL"));
                }
                check(dst, &[src0, src1], false)
            }
            Instruction::Mac { dst, src0, src1, .. } | Instruction::Mad { dst, src0, src1, .. } => {
                if !dst.kind.is_grf() {
                    return Err(ValidateError::NonGrfDestination("MAC/MAD"));
                }
                if src0.kind.is_srf() || src1.kind == OperandKind::SrfA {
                    return Err(ValidateError::ScalarOperandMisplaced("MAC/MAD"));
                }
                check(dst, &[src0, src1], true)
            }
        }
    }
}

/// A structural operand-combination violation reported by
/// [`Instruction::validate`] — the Table II/III routing rules.
///
/// The `Display` output reproduces the historical string messages, so
/// user-facing diagnostics are unchanged; the typed variants let tooling
/// such as `pim-verify` attach stable error codes without parsing text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValidateError {
    /// The operand kind cannot be written (e.g. `WDATA` as DST).
    BadDestination(OperandKind),
    /// More than one bank operand in a single instruction (the column
    /// decoder can drive only one bank access per trigger).
    MultipleBankOperands,
    /// More than one scalar (SRF) operand in a single instruction.
    MultipleScalarOperands,
    /// An accumulating op (MAC/MAD) reads the same GRF file twice.
    SameGrfFileTwice,
    /// A JUMP target that does not fit the 32-entry CRF.
    JumpTargetOutOfRange(u8),
    /// A JUMP with a zero iteration count.
    JumpZeroCount,
    /// An arithmetic destination that must be a GRF is not one; carries
    /// the mnemonic (`"ADD"`, `"MUL"`, `"MAC/MAD"`).
    NonGrfDestination(&'static str),
    /// A scalar operand in a position the datapath cannot route; carries
    /// the mnemonic (`"MUL"`, `"MAC/MAD"`).
    ScalarOperandMisplaced(&'static str),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ValidateError::BadDestination(kind) => write!(f, "{kind} cannot be a destination"),
            ValidateError::MultipleBankOperands => {
                f.write_str("at most one bank operand per instruction")
            }
            ValidateError::MultipleScalarOperands => {
                f.write_str("at most one scalar (SRF) operand per instruction")
            }
            ValidateError::SameGrfFileTwice => {
                f.write_str("accumulating ops cannot read the same GRF file twice")
            }
            ValidateError::JumpTargetOutOfRange(_) => {
                f.write_str("JUMP target beyond the 32-entry CRF")
            }
            ValidateError::JumpZeroCount => f.write_str("JUMP with zero iterations"),
            ValidateError::NonGrfDestination(mnemonic) => {
                write!(f, "{mnemonic} destination must be a GRF")
            }
            ValidateError::ScalarOperandMisplaced(mnemonic) => {
                write!(f, "{mnemonic} scalars come from SRF_M as SRC1 only")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = |aam: bool| if aam { " (AAM)" } else { "" };
        match *self {
            Instruction::Nop { cycles } => write!(f, "NOP {cycles}"),
            Instruction::Jump { target, count } => write!(f, "JUMP {target}, #{count}"),
            Instruction::Exit => write!(f, "EXIT"),
            Instruction::Mov { dst, src, relu, aam } => {
                write!(f, "MOV{} {dst}, {src}{}", if relu { "(ReLU)" } else { "" }, a(aam))
            }
            Instruction::Fill { dst, src, aam } => write!(f, "FILL {dst}, {src}{}", a(aam)),
            Instruction::Add { dst, src0, src1, aam } => {
                write!(f, "ADD {dst}, {src0}, {src1}{}", a(aam))
            }
            Instruction::Mul { dst, src0, src1, aam } => {
                write!(f, "MUL {dst}, {src0}, {src1}{}", a(aam))
            }
            Instruction::Mac { dst, src0, src1, aam } => {
                write!(f, "MAC {dst}, {src0}, {src1}{}", a(aam))
            }
            Instruction::Mad { dst, src0, src1, aam } => {
                write!(f, "MAD {dst}, {src0}, {src1}{}", a(aam))
            }
        }
    }
}

/// Operand-combination counts per operation type, reproducing Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CombinationCounts {
    /// MUL combinations (paper: 32).
    pub mul: usize,
    /// ADD combinations (paper: 40).
    pub add: usize,
    /// MAC combinations (paper: 14).
    pub mac: usize,
    /// MAD combinations (paper: 28).
    pub mad: usize,
    /// MOV / MOV(ReLU) data movements (paper: 24).
    pub mov: usize,
}

impl CombinationCounts {
    /// Total compute combinations (paper: 114).
    pub fn compute_total(&self) -> usize {
        self.mul + self.add + self.mac + self.mad
    }
}

/// Enumerates every legal operand combination per Table II's operand menus
/// and the structural rules in the module docs.
///
/// The menus (Table II): MUL reads SRC0 ∈ {GRF, BANK}, SRC1 ∈ {GRF, BANK,
/// SRF_M}; ADD reads both sources from {GRF, BANK, SRF_A}; MAC/MAD read like
/// MUL (MAD's SRC2 is implicitly SRF_A); MOV reads {GRF, BANK, SRF} with an
/// independent ReLU flag. "GRF" and "BANK" each stand for two concrete
/// operands (A/B files, even/odd banks).
pub fn combination_counts() -> CombinationCounts {
    use OperandKind::*;
    let grf = [GrfA, GrfB];
    let bank = [EvenBank, OddBank];

    let mul_src0: Vec<OperandKind> = grf.iter().chain(bank.iter()).copied().collect();
    let mul_src1: Vec<OperandKind> =
        grf.iter().chain(bank.iter()).chain([SrfM].iter()).copied().collect();
    let add_src: Vec<OperandKind> =
        grf.iter().chain(bank.iter()).chain([SrfA].iter()).copied().collect();
    let mov_src: Vec<OperandKind> =
        grf.iter().chain(bank.iter()).chain([SrfM, SrfA].iter()).copied().collect();

    let count_pairs = |s0s: &[OperandKind], s1s: &[OperandKind], accumulating: bool| {
        let mut n = 0;
        for &s0 in s0s {
            for &s1 in s1s {
                if s0.is_bank() && s1.is_bank() {
                    continue; // rule 1
                }
                if s0.is_srf() && s1.is_srf() {
                    continue; // rule 2
                }
                if accumulating && s0.is_grf() && s0 == s1 {
                    continue; // rule 3
                }
                n += 1;
            }
        }
        n
    };

    let dsts = 2; // GRF_A or GRF_B
    let mul = count_pairs(&mul_src0, &mul_src1, false) * dsts;
    let add = count_pairs(&add_src, &add_src, false) * dsts;
    // Rule 4: MAC's destination IS the accumulator (SRC2 == DST), so the
    // pair count is the combination count.
    let mac = count_pairs(&mul_src0, &mul_src1, true);
    let mad = count_pairs(&mul_src0, &mul_src1, true) * dsts;
    // MOV: 6 sources × 2 GRF destinations × ReLU on/off.
    let mov = mov_src.len() * dsts * 2;

    CombinationCounts { mul, add, mac, mad, mov }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_counts_reproduced() {
        let c = combination_counts();
        assert_eq!(c.mul, 32, "MUL");
        assert_eq!(c.add, 40, "ADD");
        assert_eq!(c.mac, 14, "MAC");
        assert_eq!(c.mad, 28, "MAD");
        assert_eq!(c.mov, 24, "MOV");
        assert_eq!(c.compute_total(), 114, "total compute combinations");
    }

    #[test]
    fn encode_decode_roundtrip_all_classes() {
        let instrs = [
            Instruction::Nop { cycles: 3 },
            Instruction::Jump { target: 5, count: 100 },
            Instruction::Exit,
            Instruction::Mov {
                dst: Operand::grf_a(1),
                src: Operand::even_bank(),
                relu: true,
                aam: false,
            },
            Instruction::Fill { dst: Operand::srf_m(0), src: Operand::wdata(), aam: false },
            Instruction::Add {
                dst: Operand::grf_b(7),
                src0: Operand::grf_a(3),
                src1: Operand::odd_bank(),
                aam: true,
            },
            Instruction::Mul {
                dst: Operand::grf_a(0),
                src0: Operand::even_bank(),
                src1: Operand::srf_m(4),
                aam: false,
            },
            Instruction::Mac {
                dst: Operand::grf_b(2),
                src0: Operand::even_bank(),
                src1: Operand::srf_m(2),
                aam: true,
            },
            Instruction::Mad {
                dst: Operand::grf_a(6),
                src0: Operand::odd_bank(),
                src1: Operand::srf_m(1),
                aam: false,
            },
        ];
        for i in instrs {
            let word = i.encode();
            assert_eq!(Instruction::decode(word), Ok(i), "word {word:#010x} ({i})");
        }
    }

    #[test]
    fn decode_rejects_unknown_opcode() {
        assert_eq!(Instruction::decode(0xF000_0000), Err(DecodeError::BadOpcode(0xF)));
        assert_eq!(Instruction::decode(0x9000_0000), Err(DecodeError::BadOpcode(0x9)));
    }

    #[test]
    fn decode_rejects_reserved_operand_kind() {
        // MOV with dst kind 7.
        let word = (0x3u32 << 28) | (7 << 25);
        assert_eq!(Instruction::decode(word), Err(DecodeError::BadOperandKind(7)));
    }

    #[test]
    fn nop_zero_decodes_as_one() {
        let w = Instruction::Nop { cycles: 0 }.encode();
        assert_eq!(Instruction::decode(w), Ok(Instruction::Nop { cycles: 1 }));
    }

    #[test]
    fn validate_accepts_paper_examples() {
        // MAC GRF_B += GRF_A × BANK (Section III-C).
        Instruction::Mac {
            dst: Operand::grf_b(0),
            src0: Operand::grf_a(0),
            src1: Operand::even_bank(),
            aam: false,
        }
        .validate()
        .unwrap();
        // MAD GRF_A = BANK × SRF_M + SRF_A (Section III-C).
        Instruction::Mad {
            dst: Operand::grf_a(0),
            src0: Operand::even_bank(),
            src1: Operand::srf_m(3),
            aam: false,
        }
        .validate()
        .unwrap();
    }

    #[test]
    fn validate_rejects_double_bank() {
        let bad = Instruction::Add {
            dst: Operand::grf_a(0),
            src0: Operand::even_bank(),
            src1: Operand::odd_bank(),
            aam: false,
        };
        let err = bad.validate().unwrap_err();
        assert_eq!(err, ValidateError::MultipleBankOperands);
        assert!(err.to_string().contains("one bank"));
    }

    #[test]
    fn validate_rejects_double_srf() {
        let bad = Instruction::Add {
            dst: Operand::grf_a(0),
            src0: Operand::srf_a(0),
            src1: Operand::srf_a(1),
            aam: false,
        };
        let err = bad.validate().unwrap_err();
        assert_eq!(err, ValidateError::MultipleScalarOperands);
        assert!(err.to_string().contains("scalar"));
    }

    #[test]
    fn validate_rejects_mac_same_grf_file() {
        let bad = Instruction::Mac {
            dst: Operand::grf_a(0),
            src0: Operand::grf_a(1),
            src1: Operand::grf_a(2),
            aam: false,
        };
        let err = bad.validate().unwrap_err();
        assert_eq!(err, ValidateError::SameGrfFileTwice);
        assert!(err.to_string().contains("same GRF file"));
    }

    #[test]
    fn validate_rejects_bad_jump() {
        assert_eq!(
            Instruction::Jump { target: 32, count: 1 }.validate(),
            Err(ValidateError::JumpTargetOutOfRange(32))
        );
        assert_eq!(
            Instruction::Jump { target: 0, count: 0 }.validate(),
            Err(ValidateError::JumpZeroCount)
        );
    }

    #[test]
    fn validate_rejects_non_grf_arith_dst() {
        let bad = Instruction::Mul {
            dst: Operand::even_bank(),
            src0: Operand::grf_a(0),
            src1: Operand::grf_b(0),
            aam: false,
        };
        assert_eq!(bad.validate(), Err(ValidateError::NonGrfDestination("MUL")));
    }

    #[test]
    fn instruction_classes() {
        assert!(Instruction::Exit.is_control());
        assert!(Instruction::Nop { cycles: 1 }.is_control());
        assert!(Instruction::Add {
            dst: Operand::grf_a(0),
            src0: Operand::grf_a(1),
            src1: Operand::grf_b(0),
            aam: false
        }
        .is_arithmetic());
        assert!(!Instruction::Exit.is_arithmetic());
    }

    #[test]
    fn display_formats() {
        let i = Instruction::Mac {
            dst: Operand::grf_b(1),
            src0: Operand::even_bank(),
            src1: Operand::srf_m(2),
            aam: true,
        };
        let s = format!("{i}");
        assert!(s.contains("MAC") && s.contains("GRF_B[1]") && s.contains("AAM"), "{s}");
        assert_eq!(format!("{}", Instruction::Exit), "EXIT");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn operand_index_bounds() {
        Operand::grf_a(8);
    }
}
