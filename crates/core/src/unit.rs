//! The PIM execution unit (Section IV): a 16-wide SIMD FPU, register files,
//! and the instruction-sequencing controller.
//!
//! One unit is shared by two banks ("we decide to place one PIM execution
//! unit between two banks", Section IV-A) and executes exactly one
//! instruction per column-command trigger, in lock-step with every other
//! unit on the channel. The five pipeline stages (fetch/decode, bank read,
//! multiply, add, write-back) all overlap with the tCCD_L command cadence,
//! so at the command-level timing abstraction a trigger maps to one
//! completed instruction; the pipeline depth only shows up as a fixed drain
//! latency accounted by [`PimUnit::PIPELINE_STAGES`].

use crate::isa::{Instruction, Operand, OperandKind};
use crate::regfile::{Crf, Grf, Srf, CRF_ENTRIES};
use crate::vector::LaneVec;

/// Which of the unit's two banks an operand touched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankPort {
    /// The even-numbered bank (EVEN_BANK operand).
    Even,
    /// The odd-numbered bank (ODD_BANK operand).
    Odd,
}

/// What kind of column command triggered execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TriggerKind {
    /// A DRAM column RD command.
    Read,
    /// A DRAM column WR command carrying a 32-byte block on the write
    /// datapath (the `WDATA` operand).
    Write(LaneVec),
}

/// A column-command trigger delivered to the unit: the implicit memory
/// operand address (open row + command column, Section IV-B) and the data
/// visible at the unit's two bank ports.
#[derive(Debug, Clone, Copy)]
pub struct Trigger {
    /// RD or WR (with write data).
    pub kind: TriggerKind,
    /// The row currently open in both banks.
    pub row: u32,
    /// The column carried by the command — also the AAM index source.
    pub col: u32,
    /// The even bank's 32-byte block at (row, col).
    pub even_data: LaneVec,
    /// The odd bank's 32-byte block at (row, col).
    pub odd_data: LaneVec,
}

/// The observable effect of one trigger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecOutcome {
    /// The instruction that executed, if the unit was running.
    pub executed: Option<Instruction>,
    /// A block the instruction wrote back to a bank at (row, col), if any
    /// (e.g. `MOV EVEN_BANK, GRF_A` storing results).
    pub bank_write: Option<(BankPort, LaneVec)>,
    /// The bank port a source operand consumed, if any — drives the energy
    /// model's per-bank access accounting.
    pub bank_read: Option<BankPort>,
    /// `true` if the unit is halted (EXIT reached) after this trigger.
    pub halted: bool,
}

/// Per-unit execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitStats {
    /// Instructions executed (NOP repeats count once per consumed trigger).
    pub instructions: u64,
    /// FP operations performed (a 16-lane ADD/MUL = 16, MAC/MAD = 32).
    pub flops: u64,
    /// Source operands read from a bank.
    pub bank_reads: u64,
    /// Results written to a bank.
    pub bank_writes: u64,
    /// WDATA operands requested by an instruction on a RD trigger (a
    /// microkernel bug; the hardware would see stale bus data, we supply
    /// zeros).
    pub wdata_on_read: u64,
}

/// One PIM execution unit: CRF + GRF_A/GRF_B + SRF_M/SRF_A + 16-wide FPU +
/// controller (Fig. 4).
#[derive(Debug, Clone)]
pub struct PimUnit {
    crf: Crf,
    grf_a: Grf,
    grf_b: Grf,
    srf_m: Srf,
    srf_a: Srf,
    /// PIM program counter (PPC, Section III-A).
    ppc: usize,
    /// Times each JUMP entry has been taken since its counter last reset.
    jump_taken: [u32; CRF_ENTRIES],
    /// Remaining triggers the current multi-cycle NOP will absorb.
    nop_remaining: u32,
    halted: bool,
    stats: UnitStats,
}

impl Default for PimUnit {
    fn default() -> PimUnit {
        PimUnit::new()
    }
}

impl PimUnit {
    /// Pipeline depth (Section IV-B): fetch/decode, bank read, multiply,
    /// add, write-back. Exposed for end-of-kernel drain accounting.
    pub const PIPELINE_STAGES: u64 = 5;

    /// A fresh, halt-on-first-trigger unit.
    pub fn new() -> PimUnit {
        PimUnit {
            crf: Crf::new(),
            grf_a: Grf::new(),
            grf_b: Grf::new(),
            srf_m: Srf::new(),
            srf_a: Srf::new(),
            ppc: 0,
            jump_taken: [0; CRF_ENTRIES],
            nop_remaining: 0,
            halted: false,
            stats: UnitStats::default(),
        }
    }

    /// The instruction buffer.
    pub fn crf(&self) -> &Crf {
        &self.crf
    }

    /// Mutable instruction buffer (memory-mapped CRF writes land here).
    pub fn crf_mut(&mut self) -> &mut Crf {
        &mut self.crf
    }

    /// GRF file A.
    pub fn grf_a(&self) -> &Grf {
        &self.grf_a
    }

    /// Mutable GRF file A.
    pub fn grf_a_mut(&mut self) -> &mut Grf {
        &mut self.grf_a
    }

    /// GRF file B.
    pub fn grf_b(&self) -> &Grf {
        &self.grf_b
    }

    /// Mutable GRF file B.
    pub fn grf_b_mut(&mut self) -> &mut Grf {
        &mut self.grf_b
    }

    /// SRF_M (multiplication scalars).
    pub fn srf_m(&self) -> &Srf {
        &self.srf_m
    }

    /// Mutable SRF_M.
    pub fn srf_m_mut(&mut self) -> &mut Srf {
        &mut self.srf_m
    }

    /// SRF_A (addition scalars).
    pub fn srf_a(&self) -> &Srf {
        &self.srf_a
    }

    /// Mutable SRF_A.
    pub fn srf_a_mut(&mut self) -> &mut Srf {
        &mut self.srf_a
    }

    /// Current program counter.
    pub fn ppc(&self) -> usize {
        self.ppc
    }

    /// `true` once EXIT has been reached.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Execution statistics.
    pub fn stats(&self) -> &UnitStats {
        &self.stats
    }

    /// Resets the sequencer (PPC, loop counters, halt flag) — performed by
    /// the device when `PIM_OP_MODE` is set to 1, so every entry into
    /// AB-PIM mode starts the microkernel from CRF entry 0.
    pub fn reset_sequencer(&mut self) {
        self.ppc = 0;
        self.jump_taken = [0; CRF_ENTRIES];
        self.nop_remaining = 0;
        self.halted = false;
    }

    /// Resolves zero-cycle control flow: follows JUMPs (without consuming
    /// a trigger) and stops at the next executable instruction; EXIT halts.
    fn resolve_control(&mut self) {
        loop {
            if self.halted {
                return;
            }
            match self.crf.fetch(self.ppc) {
                Instruction::Jump { target, count } => {
                    // The JUMP encoding carries more target bits than the
                    // CRF has entries, so a raw CRF image can name an
                    // out-of-range target. The static verifier rejects such
                    // programs (PV007); if one reaches the sequencer anyway,
                    // halt instead of indexing past the CRF.
                    debug_assert!(
                        (target as usize) < CRF_ENTRIES,
                        "JUMP target {target} outside the {CRF_ENTRIES}-entry CRF \
                         reached the sequencer (rejected statically by pim-verify)"
                    );
                    if (target as usize) >= CRF_ENTRIES {
                        self.halted = true;
                        return;
                    }
                    // The body executes `count` times: take the backward
                    // jump `count - 1` times, then fall through.
                    if self.jump_taken[self.ppc] + 1 < count {
                        self.jump_taken[self.ppc] += 1;
                        self.ppc = target as usize;
                    } else {
                        self.jump_taken[self.ppc] = 0;
                        self.ppc += 1;
                    }
                }
                Instruction::Exit => {
                    self.halted = true;
                }
                _ => return,
            }
            if self.ppc >= CRF_ENTRIES {
                self.halted = true;
                return;
            }
        }
    }

    fn aam_idx(col: u32) -> usize {
        (col & 0x7) as usize
    }

    fn src_index(op: Operand, aam: bool, col: u32) -> usize {
        if aam {
            Self::aam_idx(col)
        } else {
            op.idx as usize
        }
    }

    fn read_operand(
        &mut self,
        op: Operand,
        aam: bool,
        trig: &Trigger,
        bank_read: &mut Option<BankPort>,
    ) -> LaneVec {
        let idx = Self::src_index(op, aam, trig.col);
        match op.kind {
            OperandKind::GrfA => self.grf_a.read(idx),
            OperandKind::GrfB => self.grf_b.read(idx),
            OperandKind::EvenBank => {
                *bank_read = Some(BankPort::Even);
                trig.even_data
            }
            OperandKind::OddBank => {
                *bank_read = Some(BankPort::Odd);
                trig.odd_data
            }
            OperandKind::SrfM => self.srf_m.read_broadcast(idx),
            OperandKind::SrfA => self.srf_a.read_broadcast(idx),
            OperandKind::Wdata => match trig.kind {
                TriggerKind::Write(d) => d,
                TriggerKind::Read => {
                    self.stats.wdata_on_read += 1;
                    LaneVec::zero()
                }
            },
        }
    }

    /// Writes `value` to `dst`; returns a bank write-back if the destination
    /// is a bank.
    fn write_operand(
        &mut self,
        dst: Operand,
        aam: bool,
        col: u32,
        value: LaneVec,
    ) -> Option<(BankPort, LaneVec)> {
        let idx = Self::src_index(dst, aam, col);
        match dst.kind {
            OperandKind::GrfA => {
                self.grf_a.write(idx, value);
                None
            }
            OperandKind::GrfB => {
                self.grf_b.write(idx, value);
                None
            }
            OperandKind::EvenBank => Some((BankPort::Even, value)),
            OperandKind::OddBank => Some((BankPort::Odd, value)),
            // A 256-bit move into a scalar file loads 8 scalars: SRF_M from
            // the low half of the word, SRF_A from the high half — matching
            // the memory-mapped SRF write layout of the device.
            OperandKind::SrfM => {
                self.srf_m.load_from_lanes(&value, 0);
                None
            }
            OperandKind::SrfA => {
                self.srf_a.load_from_lanes(&value, 8);
                None
            }
            OperandKind::Wdata => {
                // The write bus is not a destination; treat as a dropped
                // write (decodable but rejected by Instruction::validate).
                None
            }
        }
    }

    /// Executes one trigger: resolves control flow, runs one instruction,
    /// advances the PPC.
    ///
    /// This is "a DRAM column command triggers the execution of a PIM
    /// instruction" (Section III-A), at the heart of the architecture.
    pub fn execute(&mut self, trig: &Trigger) -> ExecOutcome {
        // A multi-cycle NOP absorbs this trigger without a fetch.
        if self.nop_remaining > 0 {
            self.nop_remaining -= 1;
            self.stats.instructions += 1;
            if self.nop_remaining == 0 {
                self.ppc += 1;
            }
            return ExecOutcome {
                executed: Some(Instruction::Nop { cycles: 1 }),
                bank_write: None,
                bank_read: None,
                halted: self.halted,
            };
        }

        self.resolve_control();
        if self.halted {
            return ExecOutcome { executed: None, bank_write: None, bank_read: None, halted: true };
        }

        let instr = self.crf.fetch(self.ppc);
        let mut bank_read = None;
        let mut bank_write = None;
        match instr {
            Instruction::Nop { cycles } => {
                if cycles > 1 {
                    self.nop_remaining = cycles - 1;
                    // ppc advances when the last repeat is consumed.
                } else {
                    self.ppc += 1;
                }
            }
            Instruction::Jump { .. } | Instruction::Exit => {
                unreachable!("control flow resolved before fetch")
            }
            Instruction::Mov { dst, src, relu, aam } => {
                let mut v = self.read_operand(src, aam, trig, &mut bank_read);
                if relu {
                    v = v.relu();
                }
                bank_write = self.write_operand(dst, aam, trig.col, v);
                self.ppc += 1;
            }
            Instruction::Fill { dst, src, aam } => {
                let v = self.read_operand(src, aam, trig, &mut bank_read);
                bank_write = self.write_operand(dst, aam, trig.col, v);
                self.ppc += 1;
            }
            Instruction::Add { dst, src0, src1, aam } => {
                let a = self.read_operand(src0, aam, trig, &mut bank_read);
                let b = self.read_operand(src1, aam, trig, &mut bank_read);
                bank_write = self.write_operand(dst, aam, trig.col, a.add(b));
                self.stats.flops += 16;
                self.ppc += 1;
            }
            Instruction::Mul { dst, src0, src1, aam } => {
                let a = self.read_operand(src0, aam, trig, &mut bank_read);
                let b = self.read_operand(src1, aam, trig, &mut bank_read);
                bank_write = self.write_operand(dst, aam, trig.col, a.mul(b));
                self.stats.flops += 16;
                self.ppc += 1;
            }
            Instruction::Mac { dst, src0, src1, aam } => {
                let a = self.read_operand(src0, aam, trig, &mut bank_read);
                let b = self.read_operand(src1, aam, trig, &mut bank_read);
                let acc = self.read_operand(dst, aam, trig, &mut bank_read);
                bank_write = self.write_operand(dst, aam, trig.col, a.mac(b, acc));
                self.stats.flops += 32;
                self.ppc += 1;
            }
            Instruction::Mad { dst, src0, src1, aam } => {
                let a = self.read_operand(src0, aam, trig, &mut bank_read);
                let b = self.read_operand(src1, aam, trig, &mut bank_read);
                // SRC2 shares SRC1's index, in SRF_A (Section III-C).
                let c_idx = Self::src_index(src1, aam, trig.col);
                let c = self.srf_a.read_broadcast(c_idx);
                bank_write = self.write_operand(dst, aam, trig.col, a.mac(b, c));
                self.stats.flops += 32;
                self.ppc += 1;
            }
        }
        if self.ppc >= CRF_ENTRIES {
            self.halted = true;
        }
        self.stats.instructions += 1;
        if bank_read.is_some() {
            self.stats.bank_reads += 1;
        }
        if bank_write.is_some() {
            self.stats.bank_writes += 1;
        }
        ExecOutcome { executed: Some(instr), bank_write, bank_read, halted: self.halted }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_fp16::F16;

    fn rd_trigger(col: u32, even: [f32; 16], odd: [f32; 16]) -> Trigger {
        Trigger {
            kind: TriggerKind::Read,
            row: 0,
            col,
            even_data: LaneVec::from_f32(even),
            odd_data: LaneVec::from_f32(odd),
        }
    }

    #[test]
    fn fresh_unit_halts_immediately() {
        let mut u = PimUnit::new();
        let out = u.execute(&rd_trigger(0, [0.0; 16], [0.0; 16]));
        assert!(out.halted);
        assert_eq!(out.executed, None);
    }

    #[test]
    fn mov_from_bank_to_grf() {
        let mut u = PimUnit::new();
        u.crf_mut().load_program(&[
            Instruction::Mov {
                dst: Operand::grf_a(2),
                src: Operand::even_bank(),
                relu: false,
                aam: false,
            },
            Instruction::Exit,
        ]);
        u.reset_sequencer();
        let out = u.execute(&rd_trigger(5, [3.0; 16], [0.0; 16]));
        assert_eq!(out.bank_read, Some(BankPort::Even));
        assert_eq!(u.grf_a().read(2).to_f32(), [3.0; 16]);
        assert!(!out.halted);
        // Next trigger hits EXIT.
        assert!(u.execute(&rd_trigger(0, [0.0; 16], [0.0; 16])).halted);
    }

    #[test]
    fn mov_relu_clamps_negative() {
        let mut u = PimUnit::new();
        u.crf_mut().load_program(&[Instruction::Mov {
            dst: Operand::grf_b(0),
            src: Operand::odd_bank(),
            relu: true,
            aam: false,
        }]);
        u.reset_sequencer();
        let mut vals = [1.0f32; 16];
        vals[5] = -9.0;
        u.execute(&rd_trigger(0, [0.0; 16], vals));
        assert_eq!(u.grf_b().read(0)[5], F16::ZERO);
        assert_eq!(u.grf_b().read(0)[0].to_f32(), 1.0);
    }

    #[test]
    fn mac_accumulates_into_dst() {
        let mut u = PimUnit::new();
        u.crf_mut().load_program(&[
            Instruction::Mac {
                dst: Operand::grf_b(0),
                src0: Operand::even_bank(),
                src1: Operand::srf_m(0),
                aam: false,
            },
            Instruction::Jump { target: 0, count: 3 },
            Instruction::Exit,
        ]);
        u.reset_sequencer();
        u.srf_m_mut().write(0, F16::from_f32(2.0));
        for _ in 0..3 {
            u.execute(&rd_trigger(0, [1.5; 16], [0.0; 16]));
        }
        // 3 × (1.5 × 2.0) = 9.0 in every lane.
        assert_eq!(u.grf_b().read(0).to_f32(), [9.0; 16]);
        assert!(u.execute(&rd_trigger(0, [0.0; 16], [0.0; 16])).halted);
        assert_eq!(u.stats().flops, 3 * 32);
    }

    #[test]
    fn jump_is_zero_cycle() {
        // MAC + JUMP(count=8): exactly 8 triggers execute 8 MACs; the JUMP
        // itself consumes no trigger.
        let mut u = PimUnit::new();
        u.crf_mut().load_program(&[
            Instruction::Mac {
                dst: Operand::grf_a(0),
                src0: Operand::even_bank(),
                src1: Operand::srf_m(0),
                aam: false,
            },
            Instruction::Jump { target: 0, count: 8 },
            Instruction::Exit,
        ]);
        u.reset_sequencer();
        u.srf_m_mut().write(0, F16::ONE);
        for i in 0..8 {
            let out = u.execute(&rd_trigger(i, [1.0; 16], [0.0; 16]));
            assert!(matches!(out.executed, Some(Instruction::Mac { .. })), "trigger {i}");
        }
        assert_eq!(u.grf_a().read(0).to_f32(), [8.0; 16]);
        assert!(u.execute(&rd_trigger(0, [0.0; 16], [0.0; 16])).halted);
    }

    #[test]
    fn nested_loops_via_two_jumps() {
        // FILL SRF_M←WDATA; MAC×4 inner; outer ×2 — the GEMV kernel shape.
        let mut u = PimUnit::new();
        u.crf_mut().load_program(&[
            Instruction::Fill { dst: Operand::srf_m(0), src: Operand::wdata(), aam: false },
            Instruction::Mac {
                dst: Operand::grf_b(0),
                src0: Operand::even_bank(),
                src1: Operand::srf_m(0),
                aam: true,
            },
            Instruction::Jump { target: 1, count: 4 },
            Instruction::Jump { target: 0, count: 2 },
            Instruction::Exit,
        ]);
        u.reset_sequencer();
        let mut total = 0.0f32;
        for outer in 0..2 {
            // WR trigger loads 8 scalars into SRF_M.
            let scalars: [f32; 16] = std::array::from_fn(|i| (outer * 8 + i) as f32);
            u.execute(&Trigger {
                kind: TriggerKind::Write(LaneVec::from_f32(scalars)),
                row: 0,
                col: 0,
                even_data: LaneVec::zero(),
                odd_data: LaneVec::zero(),
            });
            for c in 0..4u32 {
                u.execute(&rd_trigger(c, [1.0; 16], [0.0; 16]));
                total += scalars[(c & 7) as usize];
            }
        }
        // GRF_B[0..4] accumulated via AAM dst index = col
        let got: f32 = (0..4).map(|i| u.grf_b().read(i).to_f32()[0]).sum();
        assert_eq!(got, total);
        assert!(u.execute(&rd_trigger(0, [0.0; 16], [0.0; 16])).halted);
    }

    #[test]
    fn multi_cycle_nop_absorbs_triggers() {
        let mut u = PimUnit::new();
        u.crf_mut().load_program(&[
            Instruction::Nop { cycles: 3 },
            Instruction::Mov {
                dst: Operand::grf_a(0),
                src: Operand::even_bank(),
                relu: false,
                aam: false,
            },
            Instruction::Exit,
        ]);
        u.reset_sequencer();
        for _ in 0..3 {
            let out = u.execute(&rd_trigger(0, [7.0; 16], [0.0; 16]));
            assert!(matches!(out.executed, Some(Instruction::Nop { .. })));
        }
        assert_eq!(u.grf_a().read(0).to_f32(), [0.0; 16], "MOV must not have run yet");
        u.execute(&rd_trigger(0, [7.0; 16], [0.0; 16]));
        assert_eq!(u.grf_a().read(0).to_f32(), [7.0; 16]);
    }

    #[test]
    fn mad_uses_srf_a_as_third_operand() {
        let mut u = PimUnit::new();
        u.crf_mut().load_program(&[Instruction::Mad {
            dst: Operand::grf_a(0),
            src0: Operand::even_bank(),
            src1: Operand::srf_m(3),
            aam: false,
        }]);
        u.reset_sequencer();
        u.srf_m_mut().write(3, F16::from_f32(2.0));
        u.srf_a_mut().write(3, F16::from_f32(10.0));
        u.execute(&rd_trigger(0, [4.0; 16], [0.0; 16]));
        // 4*2 + 10 = 18 — BN's scale-and-shift shape.
        assert_eq!(u.grf_a().read(0).to_f32(), [18.0; 16]);
    }

    #[test]
    fn bank_store_returns_write_back() {
        let mut u = PimUnit::new();
        u.crf_mut().load_program(&[Instruction::Mov {
            dst: Operand::even_bank(),
            src: Operand::grf_a(1),
            relu: false,
            aam: false,
        }]);
        u.reset_sequencer();
        u.grf_a_mut().write(1, LaneVec::from_f32([5.0; 16]));
        let out = u.execute(&rd_trigger(9, [0.0; 16], [0.0; 16]));
        let (port, data) = out.bank_write.unwrap();
        assert_eq!(port, BankPort::Even);
        assert_eq!(data.to_f32(), [5.0; 16]);
        assert_eq!(u.stats().bank_writes, 1);
    }

    #[test]
    fn wdata_on_read_counts_and_yields_zero() {
        let mut u = PimUnit::new();
        u.crf_mut().load_program(&[Instruction::Fill {
            dst: Operand::grf_a(0),
            src: Operand::wdata(),
            aam: false,
        }]);
        u.reset_sequencer();
        u.grf_a_mut().write(0, LaneVec::from_f32([1.0; 16]));
        u.execute(&rd_trigger(0, [0.0; 16], [0.0; 16]));
        assert_eq!(u.grf_a().read(0).to_f32(), [0.0; 16]);
        assert_eq!(u.stats().wdata_on_read, 1);
    }

    #[test]
    fn sequencer_reset_restarts_program() {
        let mut u = PimUnit::new();
        u.crf_mut().load_program(&[
            Instruction::Mov {
                dst: Operand::grf_a(0),
                src: Operand::even_bank(),
                relu: false,
                aam: false,
            },
            Instruction::Exit,
        ]);
        u.reset_sequencer();
        u.execute(&rd_trigger(0, [1.0; 16], [0.0; 16]));
        assert!(u.execute(&rd_trigger(0, [0.0; 16], [0.0; 16])).halted);
        u.reset_sequencer();
        assert!(!u.is_halted());
        let out = u.execute(&rd_trigger(0, [2.0; 16], [0.0; 16]));
        assert!(!out.halted);
        assert_eq!(u.grf_a().read(0).to_f32(), [2.0; 16]);
    }

    #[test]
    fn runaway_ppc_halts() {
        let mut u = PimUnit::new();
        // A single MOV with no EXIT after... CRF pads with EXIT, so fill
        // the entire CRF with MOVs manually.
        for i in 0..CRF_ENTRIES {
            u.crf_mut().write_word(
                i,
                Instruction::Mov {
                    dst: Operand::grf_a(0),
                    src: Operand::even_bank(),
                    relu: false,
                    aam: false,
                }
                .encode(),
            );
        }
        u.reset_sequencer();
        for _ in 0..CRF_ENTRIES {
            u.execute(&rd_trigger(0, [0.0; 16], [0.0; 16]));
        }
        assert!(u.is_halted());
    }
}
