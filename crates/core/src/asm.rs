//! A tiny assembler for PIM microkernels.
//!
//! The PIM programming model ultimately ships 32-bit words into the CRF;
//! during development it is far more pleasant to write microkernels as
//! text. [`assemble`] parses exactly the syntax [`Instruction`]'s
//! `Display` implementation prints (so assembly and disassembly round-trip
//! by construction), one instruction per line, with `;` comments:
//!
//! ```text
//! ; GEMV inner loop (Fig. 7)
//! FILL SRF_M[0], WDATA
//! MAC GRF_B[0], EVEN_BANK, SRF_M[0] (AAM)
//! JUMP 1, #8
//! JUMP 0, #512
//! EXIT
//! ```

use crate::isa::{Instruction, Operand, OperandKind, ValidateError};
use std::fmt;

/// An assembly error with its 1-based line and column numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// Line the error occurred on (1-based).
    pub line: usize,
    /// Column the error starts at (1-based, pointing at the offending
    /// token within the source line).
    pub col: usize,
    /// What went wrong.
    pub message: String,
    /// The structural rule violated, when the error came from
    /// [`Instruction::validate`] (`None` for pure syntax errors). Lets
    /// tools such as `pimlint` map to stable diagnostic codes.
    pub violation: Option<ValidateError>,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, col: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError { line, col, message: message.into(), violation: None })
}

/// 1-based column of `sub` within `raw` (`sub` must be a subslice of `raw`,
/// which every token handed around below is — they all borrow from the same
/// source line).
fn col_of(raw: &str, sub: &str) -> usize {
    (sub.as_ptr() as usize) - (raw.as_ptr() as usize) + 1
}

/// Parses an operand like `GRF_A[3]`, `EVEN_BANK`, `SRF_M[0]`, `WDATA`.
/// `col` is the operand token's 1-based column in its source line.
fn parse_operand(tok: &str, line: usize, col: usize) -> Result<Operand, AsmError> {
    let (name, idx, idx_col) = match tok.find('[') {
        Some(open) => {
            let close = match tok.find(']') {
                Some(c) if c > open => c,
                _ => return err(line, col, format!("malformed index in operand `{tok}`")),
            };
            let idx_col = col + open + 1;
            let idx: u8 = tok[open + 1..close].parse().map_err(|_| AsmError {
                line,
                col: idx_col,
                message: format!("bad register index in `{tok}`"),
                violation: None,
            })?;
            (&tok[..open], idx, idx_col)
        }
        None => (tok, 0u8, col),
    };
    if idx >= 8 {
        return err(line, idx_col, format!("register index {idx} out of range in `{tok}`"));
    }
    let kind = match name {
        "GRF_A" => OperandKind::GrfA,
        "GRF_B" => OperandKind::GrfB,
        "EVEN_BANK" => OperandKind::EvenBank,
        "ODD_BANK" => OperandKind::OddBank,
        "SRF_M" => OperandKind::SrfM,
        "SRF_A" => OperandKind::SrfA,
        "WDATA" => OperandKind::Wdata,
        other => return err(line, col, format!("unknown operand `{other}`")),
    };
    Ok(Operand::new(kind, idx))
}

/// Parses one instruction line. `raw` is the full source line (for column
/// computation); `text` is the comment-stripped, trimmed instruction slice
/// of it.
fn parse_line(raw: &str, text: &str, line: usize) -> Result<Instruction, AsmError> {
    let col = |sub: &str| col_of(raw, sub);
    // Trailing "(AAM)" flag.
    let (text, aam) = match text.strip_suffix("(AAM)") {
        Some(t) => (t.trim_end(), true),
        None => (text, false),
    };
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let operands: Vec<&str> = rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    let need = |n: usize| -> Result<(), AsmError> {
        if operands.len() == n {
            Ok(())
        } else {
            err(
                line,
                col(mnemonic),
                format!("{mnemonic} expects {n} operand(s), got {}", operands.len()),
            )
        }
    };

    let instr = match mnemonic {
        "NOP" => {
            need(1)?;
            let cycles: u32 = operands[0].parse().map_err(|_| AsmError {
                line,
                col: col(operands[0]),
                message: format!("bad NOP count `{}`", operands[0]),
                violation: None,
            })?;
            Instruction::Nop { cycles: cycles.max(1) }
        }
        "JUMP" => {
            need(2)?;
            let target: u8 = operands[0].parse().map_err(|_| AsmError {
                line,
                col: col(operands[0]),
                message: format!("bad JUMP target `{}`", operands[0]),
                violation: None,
            })?;
            let count_str = operands[1].strip_prefix('#').unwrap_or(operands[1]);
            let count: u32 = count_str.parse().map_err(|_| AsmError {
                line,
                col: col(operands[1]),
                message: format!("bad JUMP count `{}`", operands[1]),
                violation: None,
            })?;
            Instruction::Jump { target, count }
        }
        "EXIT" => {
            need(0)?;
            Instruction::Exit
        }
        "MOV" | "MOV(ReLU)" => {
            need(2)?;
            Instruction::Mov {
                dst: parse_operand(operands[0], line, col(operands[0]))?,
                src: parse_operand(operands[1], line, col(operands[1]))?,
                relu: mnemonic == "MOV(ReLU)",
                aam,
            }
        }
        "FILL" => {
            need(2)?;
            Instruction::Fill {
                dst: parse_operand(operands[0], line, col(operands[0]))?,
                src: parse_operand(operands[1], line, col(operands[1]))?,
                aam,
            }
        }
        "ADD" | "MUL" | "MAC" | "MAD" => {
            need(3)?;
            let dst = parse_operand(operands[0], line, col(operands[0]))?;
            let src0 = parse_operand(operands[1], line, col(operands[1]))?;
            let src1 = parse_operand(operands[2], line, col(operands[2]))?;
            match mnemonic {
                "ADD" => Instruction::Add { dst, src0, src1, aam },
                "MUL" => Instruction::Mul { dst, src0, src1, aam },
                "MAC" => Instruction::Mac { dst, src0, src1, aam },
                _ => Instruction::Mad { dst, src0, src1, aam },
            }
        }
        other => return err(line, col(mnemonic), format!("unknown mnemonic `{other}`")),
    };
    Ok(instr)
}

/// Assembles a microkernel: one instruction per line, `;` comments, blank
/// lines ignored.
///
/// # Errors
///
/// Returns the first [`AsmError`] (with line number) on any syntax problem,
/// and rejects programs longer than the 32-entry CRF.
///
/// ```
/// use pim_core::asm::assemble;
/// let prog = assemble(
///     "; add kernel inner step\n\
///      FILL GRF_A[0], EVEN_BANK (AAM)\n\
///      JUMP 0, #8\n\
///      EXIT",
/// ).unwrap();
/// assert_eq!(prog.len(), 3);
/// ```
pub fn assemble(source: &str) -> Result<Vec<Instruction>, AsmError> {
    let mut program = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let line = i + 1;
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let instr = parse_line(raw, text, line)?;
        instr.validate().map_err(|v| AsmError {
            line,
            col: col_of(raw, text),
            message: v.to_string(),
            violation: Some(v),
        })?;
        if program.len() >= 32 {
            return err(line, col_of(raw, text), "program exceeds the 32-entry CRF");
        }
        program.push(instr);
    }
    Ok(program)
}

/// Disassembles a program back into assembly text (the inverse of
/// [`assemble`] up to comments and whitespace).
pub fn disassemble(program: &[Instruction]) -> String {
    let mut out = String::new();
    for (i, instr) in program.iter().enumerate() {
        out.push_str(&format!("{i:>2}: {instr}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_the_gemv_kernel() {
        let prog = assemble(
            "FILL SRF_M[0], WDATA\n\
             MAC GRF_B[0], EVEN_BANK, SRF_M[0] (AAM)\n\
             JUMP 1, #8\n\
             JUMP 0, #512\n\
             EXIT",
        )
        .unwrap();
        assert_eq!(prog.len(), 5);
        assert!(matches!(prog[1], Instruction::Mac { aam: true, .. }));
        assert!(matches!(prog[3], Instruction::Jump { target: 0, count: 512 }));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let prog = assemble("; header\n\n  EXIT ; trailing\n").unwrap();
        assert_eq!(prog, vec![Instruction::Exit]);
    }

    #[test]
    fn display_round_trips_through_assemble() {
        use crate::isa::Operand;
        let originals = vec![
            Instruction::Nop { cycles: 7 },
            Instruction::Jump { target: 3, count: 100 },
            Instruction::Exit,
            Instruction::Mov {
                dst: Operand::grf_a(2),
                src: Operand::odd_bank(),
                relu: true,
                aam: true,
            },
            Instruction::Fill { dst: Operand::srf_a(1), src: Operand::wdata(), aam: false },
            Instruction::Add {
                dst: Operand::grf_b(4),
                src0: Operand::grf_a(4),
                src1: Operand::even_bank(),
                aam: true,
            },
            Instruction::Mad {
                dst: Operand::grf_a(0),
                src0: Operand::even_bank(),
                src1: Operand::srf_m(5),
                aam: false,
            },
        ];
        for instr in originals {
            let text = format!("{instr}");
            let parsed = assemble(&text).unwrap_or_else(|e| panic!("`{text}`: {e}"));
            assert_eq!(parsed, vec![instr], "`{text}`");
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("EXIT\nBOGUS GRF_A[0]").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("BOGUS"));
        let e = assemble("MOV GRF_A[9], EVEN_BANK").unwrap_err();
        assert!(e.message.contains("out of range"));
        let e = assemble("ADD GRF_A[0], EVEN_BANK").unwrap_err();
        assert!(e.message.contains("expects 3"));
        let e = assemble("JUMP 40, #1").unwrap_err();
        assert!(e.message.contains("CRF"), "{e}");
    }

    #[test]
    fn illegal_combinations_rejected_at_assembly() {
        let e = assemble("ADD GRF_A[0], EVEN_BANK, ODD_BANK").unwrap_err();
        assert!(e.message.contains("one bank"));
        assert_eq!(e.violation, Some(ValidateError::MultipleBankOperands));
    }

    #[test]
    fn oversized_program_rejected() {
        let src = "NOP 1\n".repeat(33);
        let e = assemble(&src).unwrap_err();
        assert!(e.message.contains("32"));
        assert_eq!((e.line, e.col), (33, 1));
    }

    /// One span assertion per assembler error variant: the reported
    /// (line, col) must point at the offending token so `pimlint` can
    /// render caret diagnostics.
    #[test]
    fn every_error_variant_carries_a_span() {
        let span = |src: &str| {
            let e = assemble(src).unwrap_err();
            (e.line, e.col, e.message.clone())
        };
        // Unknown mnemonic: points at the mnemonic, past indentation.
        let (l, c, m) = span("EXIT\n  BOGUS GRF_A[0]");
        assert_eq!((l, c), (2, 3), "{m}");
        assert!(m.contains("unknown mnemonic"));
        // Wrong operand count: points at the mnemonic.
        let (l, c, m) = span("ADD GRF_A[0], EVEN_BANK");
        assert_eq!((l, c), (1, 1), "{m}");
        assert!(m.contains("expects 3"));
        // Malformed index (missing `]`): points at the operand.
        let (l, c, m) = span("MOV GRF_A[0, EVEN_BANK");
        assert_eq!((l, c), (1, 5), "{m}");
        assert!(m.contains("malformed index"));
        // Non-numeric register index: points at the index digits.
        let (l, c, m) = span("MOV GRF_A[x], EVEN_BANK");
        assert_eq!((l, c), (1, 11), "{m}");
        assert!(m.contains("bad register index"));
        // Out-of-range register index: points at the index digits.
        let (l, c, m) = span("MOV GRF_A[9], EVEN_BANK");
        assert_eq!((l, c), (1, 11), "{m}");
        assert!(m.contains("out of range"));
        // Unknown operand name: points at the operand.
        let (l, c, m) = span("MOV GRF_A[0], BANK_3");
        assert_eq!((l, c), (1, 15), "{m}");
        assert!(m.contains("unknown operand"));
        // Bad NOP cycle count: points at the count.
        let (l, c, m) = span("NOP lots");
        assert_eq!((l, c), (1, 5), "{m}");
        assert!(m.contains("bad NOP count"));
        // Bad JUMP target: points at the target.
        let (l, c, m) = span("JUMP x, #1");
        assert_eq!((l, c), (1, 6), "{m}");
        assert!(m.contains("bad JUMP target"));
        // Bad JUMP count: points at the count.
        let (l, c, m) = span("JUMP 0, #x");
        assert_eq!((l, c), (1, 9), "{m}");
        assert!(m.contains("bad JUMP count"));
        // Validate violation: points at the instruction, carries the
        // typed violation.
        let e = assemble("EXIT\n   JUMP 40, #1 ; too far").unwrap_err();
        assert_eq!((e.line, e.col), (2, 4), "{}", e.message);
        assert_eq!(e.violation, Some(ValidateError::JumpTargetOutOfRange(40)));
        // Display carries line:col.
        assert!(e.to_string().starts_with("line 2:4: "), "{e}");
    }

    #[test]
    fn disassemble_lists_indices() {
        let prog = vec![Instruction::Exit];
        let text = disassemble(&prog);
        assert!(text.contains(" 0: EXIT"));
    }
}
