//! A tiny assembler for PIM microkernels.
//!
//! The PIM programming model ultimately ships 32-bit words into the CRF;
//! during development it is far more pleasant to write microkernels as
//! text. [`assemble`] parses exactly the syntax [`Instruction`]'s
//! `Display` implementation prints (so assembly and disassembly round-trip
//! by construction), one instruction per line, with `;` comments:
//!
//! ```text
//! ; GEMV inner loop (Fig. 7)
//! FILL SRF_M[0], WDATA
//! MAC GRF_B[0], EVEN_BANK, SRF_M[0] (AAM)
//! JUMP 1, #8
//! JUMP 0, #512
//! EXIT
//! ```

use crate::isa::{Instruction, Operand, OperandKind};
use std::fmt;

/// An assembly error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// Line the error occurred on (1-based).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError { line, message: message.into() })
}

/// Parses an operand like `GRF_A[3]`, `EVEN_BANK`, `SRF_M[0]`, `WDATA`.
fn parse_operand(tok: &str, line: usize) -> Result<Operand, AsmError> {
    let (name, idx) = match tok.find('[') {
        Some(open) => {
            let close = match tok.find(']') {
                Some(c) if c > open => c,
                _ => return err(line, format!("malformed index in operand `{tok}`")),
            };
            let idx: u8 = tok[open + 1..close].parse().map_err(|_| AsmError {
                line,
                message: format!("bad register index in `{tok}`"),
            })?;
            (&tok[..open], idx)
        }
        None => (tok, 0u8),
    };
    if idx >= 8 {
        return err(line, format!("register index {idx} out of range in `{tok}`"));
    }
    let kind = match name {
        "GRF_A" => OperandKind::GrfA,
        "GRF_B" => OperandKind::GrfB,
        "EVEN_BANK" => OperandKind::EvenBank,
        "ODD_BANK" => OperandKind::OddBank,
        "SRF_M" => OperandKind::SrfM,
        "SRF_A" => OperandKind::SrfA,
        "WDATA" => OperandKind::Wdata,
        other => return err(line, format!("unknown operand `{other}`")),
    };
    Ok(Operand::new(kind, idx))
}

/// Parses one instruction line (comments and surrounding whitespace already
/// stripped).
fn parse_line(text: &str, line: usize) -> Result<Instruction, AsmError> {
    // Trailing "(AAM)" flag.
    let (text, aam) = match text.strip_suffix("(AAM)") {
        Some(t) => (t.trim_end(), true),
        None => (text, false),
    };
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    let operands: Vec<&str> = rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    let need = |n: usize| -> Result<(), AsmError> {
        if operands.len() == n {
            Ok(())
        } else {
            err(line, format!("{mnemonic} expects {n} operand(s), got {}", operands.len()))
        }
    };

    let instr = match mnemonic {
        "NOP" => {
            need(1)?;
            let cycles: u32 = operands[0].parse().map_err(|_| AsmError {
                line,
                message: format!("bad NOP count `{}`", operands[0]),
            })?;
            Instruction::Nop { cycles: cycles.max(1) }
        }
        "JUMP" => {
            need(2)?;
            let target: u8 = operands[0].parse().map_err(|_| AsmError {
                line,
                message: format!("bad JUMP target `{}`", operands[0]),
            })?;
            let count_str = operands[1].strip_prefix('#').unwrap_or(operands[1]);
            let count: u32 = count_str.parse().map_err(|_| AsmError {
                line,
                message: format!("bad JUMP count `{}`", operands[1]),
            })?;
            Instruction::Jump { target, count }
        }
        "EXIT" => {
            need(0)?;
            Instruction::Exit
        }
        "MOV" | "MOV(ReLU)" => {
            need(2)?;
            Instruction::Mov {
                dst: parse_operand(operands[0], line)?,
                src: parse_operand(operands[1], line)?,
                relu: mnemonic == "MOV(ReLU)",
                aam,
            }
        }
        "FILL" => {
            need(2)?;
            Instruction::Fill {
                dst: parse_operand(operands[0], line)?,
                src: parse_operand(operands[1], line)?,
                aam,
            }
        }
        "ADD" | "MUL" | "MAC" | "MAD" => {
            need(3)?;
            let dst = parse_operand(operands[0], line)?;
            let src0 = parse_operand(operands[1], line)?;
            let src1 = parse_operand(operands[2], line)?;
            match mnemonic {
                "ADD" => Instruction::Add { dst, src0, src1, aam },
                "MUL" => Instruction::Mul { dst, src0, src1, aam },
                "MAC" => Instruction::Mac { dst, src0, src1, aam },
                _ => Instruction::Mad { dst, src0, src1, aam },
            }
        }
        other => return err(line, format!("unknown mnemonic `{other}`")),
    };
    Ok(instr)
}

/// Assembles a microkernel: one instruction per line, `;` comments, blank
/// lines ignored.
///
/// # Errors
///
/// Returns the first [`AsmError`] (with line number) on any syntax problem,
/// and rejects programs longer than the 32-entry CRF.
///
/// ```
/// use pim_core::asm::assemble;
/// let prog = assemble(
///     "; add kernel inner step\n\
///      FILL GRF_A[0], EVEN_BANK (AAM)\n\
///      JUMP 0, #8\n\
///      EXIT",
/// ).unwrap();
/// assert_eq!(prog.len(), 3);
/// ```
pub fn assemble(source: &str) -> Result<Vec<Instruction>, AsmError> {
    let mut program = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let line = i + 1;
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let instr = parse_line(text, line)?;
        instr.validate().map_err(|m| AsmError { line, message: m })?;
        program.push(instr);
    }
    if program.len() > 32 {
        return err(0, format!("program has {} instructions; the CRF holds 32", program.len()));
    }
    Ok(program)
}

/// Disassembles a program back into assembly text (the inverse of
/// [`assemble`] up to comments and whitespace).
pub fn disassemble(program: &[Instruction]) -> String {
    let mut out = String::new();
    for (i, instr) in program.iter().enumerate() {
        out.push_str(&format!("{i:>2}: {instr}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_the_gemv_kernel() {
        let prog = assemble(
            "FILL SRF_M[0], WDATA\n\
             MAC GRF_B[0], EVEN_BANK, SRF_M[0] (AAM)\n\
             JUMP 1, #8\n\
             JUMP 0, #512\n\
             EXIT",
        )
        .unwrap();
        assert_eq!(prog.len(), 5);
        assert!(matches!(prog[1], Instruction::Mac { aam: true, .. }));
        assert!(matches!(prog[3], Instruction::Jump { target: 0, count: 512 }));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let prog = assemble("; header\n\n  EXIT ; trailing\n").unwrap();
        assert_eq!(prog, vec![Instruction::Exit]);
    }

    #[test]
    fn display_round_trips_through_assemble() {
        use crate::isa::Operand;
        let originals = vec![
            Instruction::Nop { cycles: 7 },
            Instruction::Jump { target: 3, count: 100 },
            Instruction::Exit,
            Instruction::Mov {
                dst: Operand::grf_a(2),
                src: Operand::odd_bank(),
                relu: true,
                aam: true,
            },
            Instruction::Fill { dst: Operand::srf_a(1), src: Operand::wdata(), aam: false },
            Instruction::Add {
                dst: Operand::grf_b(4),
                src0: Operand::grf_a(4),
                src1: Operand::even_bank(),
                aam: true,
            },
            Instruction::Mad {
                dst: Operand::grf_a(0),
                src0: Operand::even_bank(),
                src1: Operand::srf_m(5),
                aam: false,
            },
        ];
        for instr in originals {
            let text = format!("{instr}");
            let parsed = assemble(&text).unwrap_or_else(|e| panic!("`{text}`: {e}"));
            assert_eq!(parsed, vec![instr], "`{text}`");
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("EXIT\nBOGUS GRF_A[0]").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("BOGUS"));
        let e = assemble("MOV GRF_A[9], EVEN_BANK").unwrap_err();
        assert!(e.message.contains("out of range"));
        let e = assemble("ADD GRF_A[0], EVEN_BANK").unwrap_err();
        assert!(e.message.contains("expects 3"));
        let e = assemble("JUMP 40, #1").unwrap_err();
        assert!(e.message.contains("CRF"), "{e}");
    }

    #[test]
    fn illegal_combinations_rejected_at_assembly() {
        let e = assemble("ADD GRF_A[0], EVEN_BANK, ODD_BANK").unwrap_err();
        assert!(e.message.contains("one bank"));
    }

    #[test]
    fn oversized_program_rejected() {
        let src = "NOP 1\n".repeat(33);
        let e = assemble(&src).unwrap_err();
        assert!(e.message.contains("32"));
    }

    #[test]
    fn disassemble_lists_indices() {
        let prog = vec![Instruction::Exit];
        let text = disassemble(&prog);
        assert!(text.contains(" 0: EXIT"));
    }
}
