//! The PIM execution unit's register files (Section IV-A, Table IV).

use crate::isa::Instruction;
use crate::vector::LaneVec;
use pim_fp16::F16;

/// Number of CRF (instruction) entries: 32 × 32-bit (Table IV).
pub const CRF_ENTRIES: usize = 32;
/// Number of 256-bit registers per GRF file (GRF_A and GRF_B each).
pub const GRF_ENTRIES_PER_FILE: usize = 8;
/// Number of 16-bit scalars per SRF file (SRF_M and SRF_A each).
pub const SRF_ENTRIES_PER_FILE: usize = 8;

/// The command register file: a 32-entry instruction buffer holding the PIM
/// microkernel. "PIM instructions are stored in the CRF serving as an
/// instruction buffer" (Section III-A).
#[derive(Debug, Clone)]
pub struct Crf {
    words: [u32; CRF_ENTRIES],
}

impl Default for Crf {
    fn default() -> Crf {
        Crf::new()
    }
}

impl Crf {
    /// A CRF initialized with EXIT in every slot, so an unprogrammed unit
    /// halts on its first trigger instead of executing garbage.
    pub fn new() -> Crf {
        Crf { words: [Instruction::Exit.encode(); CRF_ENTRIES] }
    }

    /// Writes the raw instruction word at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn write_word(&mut self, index: usize, word: u32) {
        assert!(index < CRF_ENTRIES, "CRF index {index} out of range");
        self.words[index] = word;
    }

    /// Reads the raw instruction word at `index`.
    pub fn read_word(&self, index: usize) -> u32 {
        assert!(index < CRF_ENTRIES, "CRF index {index} out of range");
        self.words[index]
    }

    /// Loads a whole microkernel starting at entry 0.
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds 32 instructions.
    pub fn load_program(&mut self, program: &[Instruction]) {
        assert!(program.len() <= CRF_ENTRIES, "microkernel exceeds the 32-entry CRF");
        for (i, instr) in program.iter().enumerate() {
            self.words[i] = instr.encode();
        }
        for w in self.words.iter_mut().skip(program.len()) {
            *w = Instruction::Exit.encode();
        }
    }

    /// Decodes the instruction at `index`.
    ///
    /// # Panics
    ///
    /// Panics if the stored word does not decode — the executor validates
    /// programs before loading them, so this indicates a programming bug,
    /// which the paper's deterministic model surfaces immediately.
    pub fn fetch(&self, index: usize) -> Instruction {
        Instruction::decode(self.read_word(index))
            .unwrap_or_else(|e| panic!("CRF[{index}] holds an undecodable word: {e}"))
    }
}

/// One general register file (GRF_A or GRF_B): 8 × 256-bit vector registers.
#[derive(Debug, Clone, Default)]
pub struct Grf {
    regs: [LaneVec; GRF_ENTRIES_PER_FILE],
}

impl Grf {
    /// A zeroed file.
    pub fn new() -> Grf {
        Grf::default()
    }

    /// Reads register `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 8`.
    pub fn read(&self, idx: usize) -> LaneVec {
        self.regs[idx]
    }

    /// Writes register `idx`.
    pub fn write(&mut self, idx: usize, value: LaneVec) {
        self.regs[idx] = value;
    }

    /// Clears all registers to zero.
    pub fn clear(&mut self) {
        self.regs = Default::default();
    }
}

/// One scalar register file (SRF_M or SRF_A): 8 × 16-bit scalars, each
/// broadcast across all 16 lanes when used as an operand.
#[derive(Debug, Clone)]
pub struct Srf {
    regs: [F16; SRF_ENTRIES_PER_FILE],
}

impl Default for Srf {
    fn default() -> Srf {
        Srf::new()
    }
}

impl Srf {
    /// A zeroed file.
    pub fn new() -> Srf {
        Srf { regs: [F16::ZERO; SRF_ENTRIES_PER_FILE] }
    }

    /// Reads scalar `idx`.
    pub fn read(&self, idx: usize) -> F16 {
        self.regs[idx]
    }

    /// Reads scalar `idx` broadcast across 16 lanes.
    pub fn read_broadcast(&self, idx: usize) -> LaneVec {
        LaneVec::splat(self.regs[idx])
    }

    /// Writes scalar `idx`.
    pub fn write(&mut self, idx: usize, value: F16) {
        self.regs[idx] = value;
    }

    /// Loads all 8 scalars from the first 8 lanes of a datapath word — the
    /// shape of a memory-mapped SRF write (half of a 32-byte column block).
    pub fn load_from_lanes(&mut self, v: &LaneVec, lane_offset: usize) {
        for i in 0..SRF_ENTRIES_PER_FILE {
            self.regs[i] = v[lane_offset + i];
        }
    }

    /// Clears all scalars to zero.
    pub fn clear(&mut self) {
        self.regs = [F16::ZERO; SRF_ENTRIES_PER_FILE];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Operand;

    #[test]
    fn fresh_crf_halts() {
        let crf = Crf::new();
        assert_eq!(crf.fetch(0), Instruction::Exit);
        assert_eq!(crf.fetch(31), Instruction::Exit);
    }

    #[test]
    fn program_load_and_padding() {
        let mut crf = Crf::new();
        let prog = vec![Instruction::Nop { cycles: 1 }, Instruction::Jump { target: 0, count: 4 }];
        crf.load_program(&prog);
        assert_eq!(crf.fetch(0), prog[0]);
        assert_eq!(crf.fetch(1), prog[1]);
        assert_eq!(crf.fetch(2), Instruction::Exit);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_program_rejected() {
        let mut crf = Crf::new();
        crf.load_program(&vec![Instruction::Exit; 33]);
    }

    #[test]
    fn crf_word_access() {
        let mut crf = Crf::new();
        let w = Instruction::Mov {
            dst: Operand::grf_a(0),
            src: Operand::even_bank(),
            relu: false,
            aam: true,
        }
        .encode();
        crf.write_word(7, w);
        assert_eq!(crf.read_word(7), w);
        assert!(crf.fetch(7).aam());
    }

    #[test]
    fn grf_read_write() {
        let mut grf = Grf::new();
        let v = LaneVec::from_f32([1.5; 16]);
        grf.write(3, v);
        assert_eq!(grf.read(3), v);
        assert_eq!(grf.read(0), LaneVec::zero());
        grf.clear();
        assert_eq!(grf.read(3), LaneVec::zero());
    }

    #[test]
    fn srf_broadcast() {
        let mut srf = Srf::new();
        srf.write(2, F16::from_f32(0.5));
        let v = srf.read_broadcast(2);
        assert!(v.lanes().iter().all(|l| l.to_f32() == 0.5));
    }

    #[test]
    fn srf_load_from_lanes() {
        let mut vals = [0.0f32; 16];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = i as f32;
        }
        let word = LaneVec::from_f32(vals);
        let mut m = Srf::new();
        let mut a = Srf::new();
        m.load_from_lanes(&word, 0);
        a.load_from_lanes(&word, 8);
        assert_eq!(m.read(3).to_f32(), 3.0);
        assert_eq!(a.read(3).to_f32(), 11.0);
    }
}
