//! The 256-bit datapath word: 16 FP16 lanes.

use pim_dram::{DataBlock, DATA_BLOCK_BYTES};
use pim_fp16::F16;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Number of FP16 lanes in the PIM datapath (Table IV: 16 bits × 16 lanes).
pub const LANES: usize = 16;

/// One 256-bit PIM datapath word: 16 FP16 lanes, byte-compatible with the
/// 32-byte DRAM column block it is loaded from (little-endian lanes).
///
/// # Example
///
/// ```
/// use pim_core::LaneVec;
/// use pim_fp16::F16;
///
/// let v = LaneVec::splat(F16::from_f32(2.0));
/// let w = LaneVec::splat(F16::from_f32(3.0));
/// assert_eq!(v.mul(w)[0].to_f32(), 6.0);
/// ```
#[derive(Clone, Copy, PartialEq)]
pub struct LaneVec([F16; LANES]);

impl LaneVec {
    /// All lanes zero.
    pub const fn zero() -> LaneVec {
        LaneVec([F16::ZERO; LANES])
    }

    /// Every lane set to `value` — exactly what the SRF does when supplying
    /// a scalar operand ("SRF replicates a given 16-bit value by 16 times",
    /// Section IV-A).
    pub fn splat(value: F16) -> LaneVec {
        LaneVec([value; LANES])
    }

    /// Builds a vector from 16 lanes.
    pub fn from_lanes(lanes: [F16; LANES]) -> LaneVec {
        LaneVec(lanes)
    }

    /// The lanes as a slice.
    pub fn lanes(&self) -> &[F16; LANES] {
        &self.0
    }

    /// Reinterprets a 32-byte DRAM column block as 16 little-endian FP16
    /// lanes (the bank I/O boundary view of the PIM unit).
    pub fn from_block(block: &DataBlock) -> LaneVec {
        let mut lanes = [F16::ZERO; LANES];
        for (i, lane) in lanes.iter_mut().enumerate() {
            let lo = block[2 * i] as u16;
            let hi = block[2 * i + 1] as u16;
            *lane = F16::from_bits(lo | (hi << 8));
        }
        LaneVec(lanes)
    }

    /// Serializes back to a 32-byte column block (inverse of
    /// [`LaneVec::from_block`]).
    pub fn to_block(&self) -> DataBlock {
        let mut block = [0u8; DATA_BLOCK_BYTES];
        for (i, lane) in self.0.iter().enumerate() {
            let bits = lane.to_bits();
            block[2 * i] = (bits & 0xFF) as u8;
            block[2 * i + 1] = (bits >> 8) as u8;
        }
        block
    }

    /// Lane-wise addition (one pass through the FP adders). Named after
    /// the FPU stage rather than `std::ops::Add` deliberately: the PIM
    /// datapath has no operator-like polymorphism, and the explicit call
    /// sites read like the microkernel they implement.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: LaneVec) -> LaneVec {
        self.zip(rhs, |a, b| a + b)
    }

    /// Lane-wise multiplication (one pass through the FP multipliers).
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: LaneVec) -> LaneVec {
        self.zip(rhs, |a, b| a * b)
    }

    /// Lane-wise multiply-accumulate: `acc + self*rhs` with the hardware's
    /// two-step rounding ([`F16::mac`]).
    pub fn mac(self, rhs: LaneVec, acc: LaneVec) -> LaneVec {
        let mut out = [F16::ZERO; LANES];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i].mac(rhs.0[i], acc.0[i]);
        }
        LaneVec(out)
    }

    /// Lane-wise ReLU (the MOV(ReLU) data-movement mux).
    pub fn relu(self) -> LaneVec {
        let mut out = self.0;
        for lane in &mut out {
            *lane = lane.relu();
        }
        LaneVec(out)
    }

    /// Converts every lane to `f32`.
    pub fn to_f32(&self) -> [f32; LANES] {
        let mut out = [0.0f32; LANES];
        for (o, l) in out.iter_mut().zip(self.0.iter()) {
            *o = l.to_f32();
        }
        out
    }

    /// Builds a vector from 16 `f32` values (rounded to FP16).
    pub fn from_f32(values: [f32; LANES]) -> LaneVec {
        let mut lanes = [F16::ZERO; LANES];
        for (l, v) in lanes.iter_mut().zip(values.iter()) {
            *l = F16::from_f32(*v);
        }
        LaneVec(lanes)
    }

    fn zip(self, rhs: LaneVec, f: impl Fn(F16, F16) -> F16) -> LaneVec {
        let mut out = [F16::ZERO; LANES];
        for (i, o) in out.iter_mut().enumerate() {
            *o = f(self.0[i], rhs.0[i]);
        }
        LaneVec(out)
    }
}

impl Default for LaneVec {
    fn default() -> LaneVec {
        LaneVec::zero()
    }
}

impl Index<usize> for LaneVec {
    type Output = F16;
    fn index(&self, i: usize) -> &F16 {
        &self.0[i]
    }
}

impl IndexMut<usize> for LaneVec {
    fn index_mut(&mut self, i: usize) -> &mut F16 {
        &mut self.0[i]
    }
}

impl fmt::Debug for LaneVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LaneVec[")?;
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", l.to_f32())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_roundtrip() {
        let mut block = [0u8; 32];
        for (i, b) in block.iter_mut().enumerate() {
            *b = i as u8 * 7;
        }
        let v = LaneVec::from_block(&block);
        assert_eq!(v.to_block(), block);
    }

    #[test]
    fn lanes_are_little_endian() {
        let mut block = [0u8; 32];
        block[0] = 0x00;
        block[1] = 0x3C; // lane 0 = 0x3C00 = 1.0
        let v = LaneVec::from_block(&block);
        assert_eq!(v[0].to_f32(), 1.0);
        assert_eq!(v[1].to_f32(), 0.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = LaneVec::from_f32([1.0; 16]);
        let b = LaneVec::from_f32([2.0; 16]);
        assert_eq!(a.add(b).to_f32(), [3.0; 16]);
        assert_eq!(a.mul(b).to_f32(), [2.0; 16]);
        let acc = LaneVec::from_f32([10.0; 16]);
        assert_eq!(a.mac(b, acc).to_f32(), [12.0; 16]);
    }

    #[test]
    fn relu_lane_wise() {
        let mut vals = [1.0f32; 16];
        vals[3] = -5.0;
        vals[7] = -0.0;
        let v = LaneVec::from_f32(vals).relu();
        assert_eq!(v[3].to_f32(), 0.0);
        assert_eq!(v[7].to_bits(), 0);
        assert_eq!(v[0].to_f32(), 1.0);
    }

    #[test]
    fn splat_fills_all_lanes() {
        use pim_fp16::F16;
        let v = LaneVec::splat(F16::from_f32(4.5));
        assert!(v.lanes().iter().all(|l| l.to_f32() == 4.5));
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(format!("{:?}", LaneVec::zero()).contains("LaneVec"));
    }
}
