//! The PIM-HBM architecture: the primary contribution of the paper
//! ("Hardware Architecture and Software Stack for PIM Based on Commercial
//! DRAM Technology", ISCA 2021), reproduced as a functional + timing model
//! on top of the [`pim_dram`] HBM2 substrate.
//!
//! # What lives here
//!
//! * [`isa`] — the 9-instruction, 32-bit RISC-style PIM ISA of Table III,
//!   with bit-exact encode/decode and the operand-combination rules that
//!   reproduce Table II's counts (114 compute combinations + 24 data
//!   movements).
//! * [`LaneVec`] — the 256-bit (16 × FP16) datapath word.
//! * Register files — [`Crf`] (32 × 32-bit instruction buffer), [`Grf`]
//!   (16 × 256-bit, split into GRF_A / GRF_B for the even / odd bank), and
//!   [`Srf`] (SRF_M + SRF_A scalar files), per Table IV.
//! * [`PimUnit`] — one execution unit (16-wide SIMD FPU + controller +
//!   registers) shared by a pair of banks, executing one instruction per
//!   column-command trigger in the 5-stage pipeline of Section IV-B,
//!   including zero-cycle JUMP, multi-cycle NOP, and address-aligned mode
//!   (AAM, Section IV-C).
//! * [`PimChannel`] — a pseudo channel of PIM-HBM: a plain
//!   [`pim_dram::PseudoChannel`] plus 8 PIM units and the SB / AB / AB-PIM
//!   mode state machine of Section III-B, driven **only** by standard DRAM
//!   commands (mode transitions are ACT/PRE sequences to reserved
//!   `PIM_CONF` rows; registers are memory-mapped). It implements
//!   [`pim_dram::CommandSink`], so the unmodified [`pim_dram::MemoryController`]
//!   drives it — the paper's drop-in-replacement property.
//! * [`PimConfig`] / [`PimVariant`] — Table IV/V specification constants
//!   plus the design-space-exploration variants of Fig. 14 (2× resources,
//!   2-bank access, simultaneous RD+WR).
//!
//! # Example: entering all-bank mode with standard DRAM commands
//!
//! ```
//! use pim_core::{PimChannel, PimConfig, conf};
//! use pim_dram::{CommandSink, TimingParams};
//!
//! let mut ch = PimChannel::new(TimingParams::hbm2(), PimConfig::paper());
//! let mut t = 0;
//! for cmd in conf::enter_ab_sequence() {
//!     let at = ch.earliest_issue(&cmd, t);
//!     ch.issue(&cmd, at).unwrap();
//!     t = at;
//! }
//! assert_eq!(ch.mode(), pim_core::PimMode::AllBank);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod config;
mod device;
pub mod isa;
mod regfile;
mod unit;
mod vector;

pub mod conf {
    //! The reserved `PIM_CONF` memory map and mode-transition command
    //! sequences (Section III-B, Fig. 3).
    pub use crate::device::{
        enter_ab_sequence, exit_ab_sequence, set_pim_op_mode_sequence, ABMR_ROW, CRF_ROW, GRF_ROW,
        PIM_CONF_FIRST_ROW, PIM_OP_MODE_ROW, SBMR_ROW, SRF_ROW,
    };
}

pub use config::{PimConfig, PimVariant};
pub use device::{PimChannel, PimChannelStats, PimMode};
pub use regfile::{Crf, Grf, Srf};
pub use unit::{BankPort, PimUnit, Trigger, TriggerKind};
pub use vector::LaneVec;
