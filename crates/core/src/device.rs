//! The PIM-HBM pseudo channel: a standard HBM2 channel plus PIM execution
//! units and the SB / AB / AB-PIM operating-mode machinery of Section III.
//!
//! [`PimChannel`] implements [`pim_dram::CommandSink`], so the **unmodified**
//! [`pim_dram::MemoryController`] drives it exactly as it drives a plain
//! channel — the paper's drop-in-replacement property. Everything PIM is
//! expressed through standard DRAM commands:
//!
//! * **Mode transitions** (Fig. 3) are ACT+PRE sequences to reserved rows.
//!   The host enters all-bank mode by activating and precharging the `ABMR`
//!   row, and returns by the same sequence on the `SBMR` row. "This
//!   approach is compatible with any processors adopting JEDEC-compliant
//!   DRAM controllers because it relies on standard DRAM commands"
//!   (Section III-B).
//! * **AB-PIM mode** is toggled by writing the memory-mapped `PIM_OP_MODE`
//!   register.
//! * **Registers are memory-mapped**: writes to the `CRF`/`SRF`/`GRF` rows
//!   program the units; reads of the `GRF` row in single-bank mode read a
//!   specific unit's results back.
//!
//! # The reserved `PIM_CONF` memory map
//!
//! The top rows of every bank are reserved (the PIM device driver never
//! allocates them — the "gray region" of Fig. 3):
//!
//! | row | contents |
//! |---|---|
//! | `0x1FFF` | `ABMR` — ACT+PRE enters all-bank mode |
//! | `0x1FFE` | `SBMR` — ACT+PRE exits to single-bank mode |
//! | `0x1FFD` | `PIM_OP_MODE` — WR with bit 0 set enters AB-PIM |
//! | `0x1FFC` | `CRF` — WR at column c loads CRF words 8c..8c+8 |
//! | `0x1FFB` | `SRF` — WR loads SRF_M (lanes 0–7) and SRF_A (lanes 8–15) |
//! | `0x1FFA` | `GRF` — columns 0–7 map GRF_A[0..8], 8–15 map GRF_B[0..8] |

use crate::config::PimConfig;
use crate::unit::{BankPort, PimUnit, Trigger, TriggerKind};
use crate::vector::LaneVec;
use pim_dram::{
    BankAddr, Command, CommandSink, Cycle, DataBlock, IssueError, IssueOutcome, PseudoChannel,
    TimingParams,
};
use pim_faults::{CellFaults, ColumnFault, DeviceFaults, FaultPlan};
use pim_obs::{names, Event, Recorder, Scope};

/// First reserved row of the `PIM_CONF` region.
pub const PIM_CONF_FIRST_ROW: u32 = 0x1FFA;
/// Memory-mapped GRF row.
pub const GRF_ROW: u32 = 0x1FFA;
/// Memory-mapped SRF row.
pub const SRF_ROW: u32 = 0x1FFB;
/// Memory-mapped CRF row.
pub const CRF_ROW: u32 = 0x1FFC;
/// The `PIM_OP_MODE` register row.
pub const PIM_OP_MODE_ROW: u32 = 0x1FFD;
/// The SB-mode-return register row (`SBMR`).
pub const SBMR_ROW: u32 = 0x1FFE;
/// The AB-mode-entry register row (`ABMR`).
pub const ABMR_ROW: u32 = 0x1FFF;

/// The operating mode of a PIM-HBM channel (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PimMode {
    /// Standard DRAM operation; each command targets one bank.
    SingleBank,
    /// All banks respond to every command in lock-step; no PIM execution.
    AllBank,
    /// All-bank operation where every column command triggers one PIM
    /// instruction per unit.
    AllBankPim,
}

impl std::fmt::Display for PimMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PimMode::SingleBank => "SB",
            PimMode::AllBank => "AB",
            PimMode::AllBankPim => "AB-PIM",
        })
    }
}

/// The standard-command sequence that enters all-bank mode: ACT then PRE on
/// the `ABMR` row (Fig. 3).
pub fn enter_ab_sequence() -> Vec<Command> {
    let bank = BankAddr::new(0, 0);
    vec![Command::Act { bank, row: ABMR_ROW }, Command::Pre { bank }]
}

/// The sequence that exits all-bank mode back to single-bank mode: ACT then
/// PRE on the `SBMR` row. In AB mode the PRE closes **all** banks, which is
/// exactly the paper's exit requirement ("the host processor precharges
/// (closes) all the open rows of the banks so that there is no row-buffer
/// conflict after the transition").
pub fn exit_ab_sequence() -> Vec<Command> {
    let bank = BankAddr::new(0, 0);
    vec![Command::Act { bank, row: SBMR_ROW }, Command::Pre { bank }]
}

/// The sequence that sets the `PIM_OP_MODE` register to `enable`:
/// ACT of the register row, a WR whose bit 0 carries the value, and PRE.
pub fn set_pim_op_mode_sequence(enable: bool) -> Vec<Command> {
    let bank = BankAddr::new(0, 0);
    let mut data: DataBlock = [0u8; 32];
    data[0] = enable as u8;
    vec![
        Command::Act { bank, row: PIM_OP_MODE_ROW },
        Command::Wr { bank, col: 0, data },
        Command::Pre { bank },
    ]
}

/// Statistics of a PIM channel, feeding the energy model (Fig. 11) and the
/// performance reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PimChannelStats {
    /// SB↔AB↔AB-PIM transitions performed.
    pub mode_transitions: u64,
    /// All-bank ACT commands (each activates 16 banks).
    pub ab_acts: u64,
    /// All-bank precharges.
    pub ab_pres: u64,
    /// Column RD commands in AB / AB-PIM mode.
    pub ab_reads: u64,
    /// Column WR commands in AB / AB-PIM mode.
    pub ab_writes: u64,
    /// Triggers delivered to PIM units (commands × units).
    pub pim_triggers: u64,
    /// Bank blocks read as instruction operands.
    pub bank_operand_reads: u64,
    /// Bank blocks written as instruction results.
    pub bank_result_writes: u64,
    /// Configuration-row register writes.
    pub conf_writes: u64,
    /// Configuration-row register reads.
    pub conf_reads: u64,
}

/// Lock-step timing state of the virtual "all-bank bank": in AB modes every
/// bank carries identical state, so one set of horizons suffices. Columns
/// pace at tCCD_L ("each bank can operate at every tCCD_L in AB mode",
/// Section III-B).
#[derive(Debug, Clone, Copy, Default)]
struct AbTiming {
    open_row: Option<u32>,
    next_act: Cycle,
    next_col: Cycle,
    next_pre: Cycle,
}

/// A pending mode-transition: an ACT to ABMR/SBMR has been seen and awaits
/// its PRE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingTransition {
    ToAllBank(BankAddr),
    ToSingleBank,
}

/// A PIM-HBM pseudo channel (see module docs).
#[derive(Debug)]
pub struct PimChannel {
    inner: PseudoChannel,
    config: PimConfig,
    mode: PimMode,
    pending: Option<PendingTransition>,
    units: Vec<PimUnit>,
    ab: AbTiming,
    stats: PimChannelStats,
    /// Observability hook; `None` (the default) costs one pointer test.
    recorder: Option<Recorder>,
    /// System-level channel index stamped into event scopes.
    channel_id: u16,
    /// Seeded device-fault injector; `None` (the default) keeps the
    /// channel bit-identical to a build without fault support.
    faults: Option<Box<DeviceFaults>>,
}

impl PimChannel {
    /// Creates a PIM-HBM channel.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`PimConfig::validate`].
    pub fn new(timing: TimingParams, config: PimConfig) -> PimChannel {
        config.validate().expect("invalid PIM configuration");
        let units = (0..config.units_per_pch).map(|_| PimUnit::new()).collect();
        PimChannel {
            inner: PseudoChannel::new(timing),
            config,
            mode: PimMode::SingleBank,
            pending: None,
            units,
            ab: AbTiming::default(),
            stats: PimChannelStats::default(),
            recorder: None,
            channel_id: 0,
            faults: None,
        }
    }

    /// Installs the seeded fault state for this channel: the device-level
    /// command injector plus per-bank cell faults. `channel` is the
    /// system-level channel index; it salts every decision so channels
    /// fault independently of one another under one seed.
    pub fn install_faults(&mut self, plan: &FaultPlan, channel: u16) {
        self.faults = DeviceFaults::new(plan, channel as u64).map(Box::new);
        for bank in BankAddr::all() {
            let salt = ((channel as u64) << 8) | bank.flat_index() as u64;
            self.inner.bank_mut(bank).set_faults(CellFaults::new(plan, salt));
        }
    }

    /// Whether this channel's PIM units are hard-failed by the installed
    /// fault plan (they never execute, so PIM results are garbage).
    pub fn hard_failed(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.hard_failed())
    }

    /// Attaches an observability recorder; `channel_id` is the system-level
    /// channel index stamped into event scopes.
    pub fn set_recorder(&mut self, recorder: Recorder, channel_id: u16) {
        self.recorder = Some(recorder);
        self.channel_id = channel_id;
    }

    /// The attached recorder, if any.
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }

    /// The system-level channel index stamped into event scopes (0 unless
    /// set by [`PimChannel::set_recorder`]).
    pub fn channel_id(&self) -> u16 {
        self.channel_id
    }

    /// Current operating mode.
    pub fn mode(&self) -> PimMode {
        self.mode
    }

    /// The device configuration.
    pub fn config(&self) -> &PimConfig {
        &self.config
    }

    /// PIM channel statistics.
    pub fn stats(&self) -> &PimChannelStats {
        &self.stats
    }

    /// Access to PIM unit `idx` (for result readback in tests and the
    /// energy model's per-unit accounting).
    pub fn unit(&self, idx: usize) -> &PimUnit {
        &self.units[idx]
    }

    /// Number of PIM units on this channel.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// The wrapped plain channel (bank contents, HBM-level stats).
    pub fn dram(&self) -> &PseudoChannel {
        &self.inner
    }

    /// Mutable access to the wrapped channel — the software stack's DMA
    /// backdoor for loading tensors ([`pim_dram::Bank::poke_block`]).
    pub fn dram_mut(&mut self) -> &mut PseudoChannel {
        &mut self.inner
    }

    /// The PIM unit that owns `bank` (one unit per even/odd bank pair).
    fn unit_of(&self, bank: BankAddr) -> usize {
        bank.flat_index() / 2
    }

    fn is_conf_row(row: u32) -> bool {
        row >= PIM_CONF_FIRST_ROW
    }

    /// Handles a register write at (`row`, `col`) for unit `unit_idx`
    /// (SB mode) or broadcast to all units (`None`, AB modes).
    fn conf_write(&mut self, row: u32, col: u32, data: &DataBlock, unit_idx: Option<usize>) {
        self.stats.conf_writes += 1;
        let word = LaneVec::from_block(data);
        let targets: Vec<usize> = match unit_idx {
            Some(u) => vec![u],
            None => (0..self.units.len()).collect(),
        };
        match row {
            PIM_OP_MODE_ROW => {
                let enable = data[0] & 1 == 1;
                match (self.mode, enable) {
                    (PimMode::AllBank, true) => {
                        self.mode = PimMode::AllBankPim;
                        self.stats.mode_transitions += 1;
                        for u in &mut self.units {
                            u.reset_sequencer();
                        }
                    }
                    (PimMode::AllBankPim, false) => {
                        self.mode = PimMode::AllBank;
                        self.stats.mode_transitions += 1;
                    }
                    // Setting the current value again is a no-op; setting
                    // PIM_OP_MODE in SB mode is ignored, as the paper's
                    // AB-PIM mode "is proceeded by the AB mode".
                    _ => {}
                }
            }
            CRF_ROW => {
                let base = (col as usize % 4) * 8;
                for &t in &targets {
                    for i in 0..8 {
                        let b = i * 4;
                        let w =
                            u32::from_le_bytes([data[b], data[b + 1], data[b + 2], data[b + 3]]);
                        self.units[t].crf_mut().write_word(base + i, w);
                    }
                }
                if let Some(r) = &self.recorder {
                    r.add(names::DEV_CRF_LOADS, 8 * targets.len() as u64);
                }
            }
            SRF_ROW => {
                for &t in &targets {
                    self.units[t].srf_m_mut().load_from_lanes(&word, 0);
                    self.units[t].srf_a_mut().load_from_lanes(&word, 8);
                }
            }
            GRF_ROW => {
                let c = (col as usize) % 16;
                for &t in &targets {
                    if c < 8 {
                        self.units[t].grf_a_mut().write(c, word);
                    } else {
                        self.units[t].grf_b_mut().write(c - 8, word);
                    }
                }
            }
            _ => {
                // ABMR/SBMR rows have no data registers; writes are ignored.
            }
        }
    }

    /// Handles a register read at (`row`, `col`) from unit `unit_idx`.
    fn conf_read(&mut self, row: u32, col: u32, unit_idx: usize) -> DataBlock {
        self.stats.conf_reads += 1;
        match row {
            PIM_OP_MODE_ROW => {
                let mut d = [0u8; 32];
                d[0] = (self.mode == PimMode::AllBankPim) as u8;
                d
            }
            CRF_ROW => {
                let base = (col as usize % 4) * 8;
                let mut d = [0u8; 32];
                for i in 0..8 {
                    let w = self.units[unit_idx].crf().read_word(base + i).to_le_bytes();
                    d[i * 4..i * 4 + 4].copy_from_slice(&w);
                }
                d
            }
            SRF_ROW => {
                let mut lanes = [pim_fp16::F16::ZERO; 16];
                for i in 0..8 {
                    lanes[i] = self.units[unit_idx].srf_m().read(i);
                    lanes[8 + i] = self.units[unit_idx].srf_a().read(i);
                }
                LaneVec::from_lanes(lanes).to_block()
            }
            GRF_ROW => {
                let c = (col as usize) % 16;
                let v = if c < 8 {
                    self.units[unit_idx].grf_a().read(c)
                } else {
                    self.units[unit_idx].grf_b().read(c - 8)
                };
                v.to_block()
            }
            _ => [0u8; 32],
        }
    }

    /// Rolls the per-command fault decision for a data-row column command
    /// in an all-bank mode. A mode-machine glitch is applied on the spot:
    /// the units' sequencers reset as if `PIM_OP_MODE` had been rewritten,
    /// and the command then proceeds with the corrupted program state.
    fn roll_column_fault(&mut self) -> ColumnFault {
        let Some(f) = &mut self.faults else { return ColumnFault::None };
        let fault = f.next_column();
        if fault != ColumnFault::None {
            if let Some(r) = &self.recorder {
                r.add(names::DEV_FAULTS_INJECTED, 1);
            }
        }
        if fault == ColumnFault::Glitch {
            for u in &mut self.units {
                u.reset_sequencer();
            }
        }
        fault
    }

    /// Delivers a column-command trigger to every PIM unit in lock-step.
    fn dispatch_triggers(&mut self, kind: TriggerKind, row: u32, col: u32) {
        // A hard-failed channel's units never execute: triggers arrive but
        // nothing runs and no results are written, so resident outputs stay
        // stale — the wrong-answer signature the runtime quarantines on.
        if self.faults.as_ref().is_some_and(|f| f.hard_failed()) {
            return;
        }
        for u in 0..self.units.len() {
            let even = BankAddr::from_flat_index(2 * u);
            let odd = BankAddr::from_flat_index(2 * u + 1);
            let even_data = LaneVec::from_block(&self.inner.bank(even).read_block(col));
            let odd_data = LaneVec::from_block(&self.inner.bank(odd).read_block(col));
            let trig = Trigger { kind, row, col, even_data, odd_data };
            let out = self.units[u].execute(&trig);
            // Cross-check the static verifier's contract: any instruction
            // the unit actually executes must be legal on this variant. A
            // failure here means a program bypassed `pim-verify` (or the
            // verifier has a soundness hole) — debug builds stop at the
            // first dynamic violation.
            #[cfg(debug_assertions)]
            if let Some(i) = out.executed {
                if let Err(e) = self.config.instruction_legal(&i) {
                    panic!("unit {u} executed an illegal instruction `{i}`: {e}");
                }
            }
            self.stats.pim_triggers += 1;
            if out.bank_read.is_some() {
                self.stats.bank_operand_reads += 1;
            }
            if let Some((port, v)) = out.bank_write {
                let addr = match port {
                    BankPort::Even => even,
                    BankPort::Odd => odd,
                };
                self.inner.bank_mut(addr).write_block(col, &v.to_block());
                self.stats.bank_result_writes += 1;
            }
        }
        if let Some(r) = &self.recorder {
            let n = self.units.len() as u64;
            r.add(names::DEV_PIM_TRIGGERS, n);
            // Each trigger occupies a unit's pipeline for one column slot
            // (tCCD_L — "each bank can operate at every tCCD_L in AB mode").
            r.add(names::DEV_UNIT_BUSY_CYCLES, n * self.inner.timing().t_ccd_l);
        }
    }

    /// Issues a command while in an all-bank mode.
    fn issue_ab(&mut self, cmd: &Command, cycle: Cycle) -> Result<IssueOutcome, IssueError> {
        let t = self.inner.timing().clone();
        let earliest = self.earliest_ab(cmd, cycle);
        if cycle < earliest {
            return Err(IssueError::TooEarly { earliest });
        }
        match cmd {
            Command::Act { bank, row } => {
                if self.ab.open_row.is_some() {
                    return Err(IssueError::BankAlreadyOpen);
                }
                self.inner.all_bank_activate(*row, cycle);
                self.ab.open_row = Some(*row);
                self.ab.next_col = cycle + t.t_rcd;
                self.ab.next_pre = cycle + t.t_ras;
                self.ab.next_act = cycle + t.t_rc;
                self.stats.ab_acts += 1;
                // An ACT to the SBMR row arms the exit transition.
                if *row == SBMR_ROW {
                    self.pending = Some(PendingTransition::ToSingleBank);
                } else {
                    self.pending = None;
                }
                let _ = bank; // the BA/BG of the command is ignored in AB mode
                Ok(IssueOutcome { issued_at: cycle, data: None, data_at: None })
            }
            Command::Pre { .. } | Command::PreAll => {
                if self.ab.open_row.is_none() {
                    return Err(IssueError::BankNotOpen);
                }
                self.inner.all_bank_precharge(cycle);
                self.ab.open_row = None;
                self.ab.next_act = self.ab.next_act.max(cycle + t.t_rp);
                self.stats.ab_pres += 1;
                if self.pending == Some(PendingTransition::ToSingleBank) {
                    self.pending = None;
                    self.mode = PimMode::SingleBank;
                    self.stats.mode_transitions += 1;
                    // Hand the channel back with every horizon at or past
                    // the end of all-bank activity.
                    self.inner.quiesce_until(self.ab.next_act);
                }
                Ok(IssueOutcome { issued_at: cycle, data: None, data_at: None })
            }
            Command::Rd { col, .. } => {
                let row = self.ab.open_row.ok_or(IssueError::BankNotOpen)?;
                self.ab.next_col = cycle + t.t_ccd_l;
                self.ab.next_pre = self.ab.next_pre.max(cycle + t.t_rtp);
                self.stats.ab_reads += 1;
                if Self::is_conf_row(row) {
                    let data = self.conf_read(row, *col, 0);
                    return Ok(IssueOutcome {
                        issued_at: cycle,
                        data: Some(data),
                        data_at: Some(cycle + t.t_cl + t.t_bl),
                    });
                }
                let fault = self.roll_column_fault();
                match self.mode {
                    PimMode::AllBank => {
                        // Lock-step read: the host observes bank (0,0).
                        let mut data = match fault {
                            // A dropped read returns an empty burst.
                            ColumnFault::Drop => [0u8; 32],
                            _ => self.inner.bank(BankAddr::new(0, 0)).read_block(*col),
                        };
                        if let ColumnFault::CorruptBit(bit) = fault {
                            pim_faults::flip_bit(&mut data, bit);
                        }
                        Ok(IssueOutcome {
                            issued_at: cycle,
                            data: Some(data),
                            data_at: Some(cycle + t.t_cl + t.t_bl),
                        })
                    }
                    PimMode::AllBankPim => {
                        // The RD triggers PIM execution; no data crosses the
                        // external I/O ("the AB-PIM mode does not consume
                        // power for transferring data from the bank I/O all
                        // the way to the I/O circuits", Section III-B).
                        if fault != ColumnFault::Drop {
                            self.dispatch_triggers(TriggerKind::Read, row, *col);
                        }
                        Ok(IssueOutcome { issued_at: cycle, data: None, data_at: Some(cycle) })
                    }
                    PimMode::SingleBank => unreachable!("issue_ab in SB mode"),
                }
            }
            Command::Wr { col, data, .. } => {
                let row = self.ab.open_row.ok_or(IssueError::BankNotOpen)?;
                self.ab.next_col = cycle + t.t_ccd_l;
                self.ab.next_pre = self.ab.next_pre.max(cycle + t.t_wl + t.t_bl + t.t_wr);
                self.stats.ab_writes += 1;
                let data_at = Some(cycle + t.t_wl + t.t_bl);
                if Self::is_conf_row(row) {
                    self.conf_write(row, *col, data, None);
                    return Ok(IssueOutcome { issued_at: cycle, data: None, data_at });
                }
                let fault = self.roll_column_fault();
                let mut payload = *data;
                if let ColumnFault::CorruptBit(bit) = fault {
                    pim_faults::flip_bit(&mut payload, bit);
                }
                match self.mode {
                    PimMode::AllBank => {
                        // Broadcast write: the same block lands in every
                        // bank — how the software stack replicates shared
                        // operands across banks in one command.
                        if fault != ColumnFault::Drop {
                            for b in BankAddr::all() {
                                self.inner.bank_mut(b).write_block(*col, &payload);
                            }
                        }
                        Ok(IssueOutcome { issued_at: cycle, data: None, data_at })
                    }
                    PimMode::AllBankPim => {
                        // The WR's block rides the write datapath into the
                        // units as the WDATA operand; the array itself is
                        // not written (instructions write banks explicitly).
                        if fault != ColumnFault::Drop {
                            let wdata = LaneVec::from_block(&payload);
                            self.dispatch_triggers(TriggerKind::Write(wdata), row, *col);
                        }
                        Ok(IssueOutcome { issued_at: cycle, data: None, data_at })
                    }
                    PimMode::SingleBank => unreachable!("issue_ab in SB mode"),
                }
            }
            Command::Ref => {
                if self.ab.open_row.is_some() {
                    return Err(IssueError::BanksOpenOnRefresh);
                }
                self.ab.next_act = self.ab.next_act.max(cycle + t.t_rfc);
                Ok(IssueOutcome { issued_at: cycle, data: None, data_at: None })
            }
        }
    }

    fn earliest_ab(&self, cmd: &Command, now: Cycle) -> Cycle {
        match cmd {
            Command::Act { .. } => now.max(self.ab.next_act),
            Command::Rd { .. } | Command::Wr { .. } => now.max(self.ab.next_col),
            Command::Pre { .. } | Command::PreAll => now.max(self.ab.next_pre),
            Command::Ref => now.max(self.ab.next_act),
        }
    }

    /// The mode-independent issue path; [`CommandSink::issue`] wraps it to
    /// observe mode transitions.
    fn issue_inner(&mut self, cmd: &Command, cycle: Cycle) -> Result<IssueOutcome, IssueError> {
        if self.mode != PimMode::SingleBank {
            return self.issue_ab(cmd, cycle);
        }
        // Single-bank mode: pass through, then post-process for mode
        // transitions and memory-mapped register access.
        let open_row_before = cmd.bank().and_then(|b| self.inner.open_row(b));
        let mut outcome = self.inner.issue(cmd, cycle)?;
        match cmd {
            Command::Act { bank, row } if *row == ABMR_ROW => {
                self.pending = Some(PendingTransition::ToAllBank(*bank));
            }
            Command::Act { .. } => {
                self.pending = None;
            }
            Command::Pre { bank } => {
                if self.pending == Some(PendingTransition::ToAllBank(*bank)) {
                    self.pending = None;
                    assert!(
                        self.inner.all_banks_closed(),
                        "entering all-bank mode requires all banks precharged \
                         (the PIM executor must close open rows first)"
                    );
                    self.mode = PimMode::AllBank;
                    self.stats.mode_transitions += 1;
                    self.ab = AbTiming {
                        open_row: None,
                        // Inherit the post-PRE horizon so the first all-bank
                        // ACT respects tRP.
                        next_act: self
                            .inner
                            .earliest_issue(&Command::Act { bank: *bank, row: 0 }, cycle),
                        next_col: cycle,
                        next_pre: cycle,
                    };
                }
            }
            Command::Rd { bank, col } => {
                if let Some(row) = open_row_before {
                    if Self::is_conf_row(row) {
                        let unit = self.unit_of(*bank);
                        outcome.data = Some(self.conf_read(row, *col, unit));
                    }
                }
                self.pending = None;
            }
            Command::Wr { bank, col, data } => {
                if let Some(row) = open_row_before {
                    if Self::is_conf_row(row) {
                        let unit = self.unit_of(*bank);
                        self.conf_write(row, *col, data, Some(unit));
                    }
                }
                self.pending = None;
            }
            Command::PreAll | Command::Ref => {}
        }
        Ok(outcome)
    }
}

impl CommandSink for PimChannel {
    fn earliest_issue(&self, cmd: &Command, now: Cycle) -> Cycle {
        match self.mode {
            PimMode::SingleBank => self.inner.earliest_issue(cmd, now),
            _ => self.earliest_ab(cmd, now),
        }
    }

    fn issue(&mut self, cmd: &Command, cycle: Cycle) -> Result<IssueOutcome, IssueError> {
        let before = self.mode;
        let result = self.issue_inner(cmd, cycle);
        if result.is_ok() {
            if let Some(f) = &self.faults {
                let p = f.stall_penalty();
                if p > 0 {
                    // A stall-degraded channel: every accepted command
                    // pushes the timing horizons out by the penalty.
                    match self.mode {
                        PimMode::SingleBank => self.inner.quiesce_until(cycle + p),
                        _ => {
                            self.ab.next_act = self.ab.next_act.max(cycle + p);
                            self.ab.next_col = self.ab.next_col.max(cycle + p);
                            self.ab.next_pre = self.ab.next_pre.max(cycle + p);
                        }
                    }
                }
            }
        }
        if self.mode != before {
            if let Some(r) = &self.recorder {
                r.add(names::DEV_MODE_TRANSITIONS, 1);
                r.emit(Event::instant(
                    cycle,
                    format!("{before}->{}", self.mode),
                    names::CAT_MODE,
                    Scope::channel(self.channel_id),
                ));
            }
        }
        result
    }

    fn open_row(&self, bank: BankAddr) -> Option<u32> {
        match self.mode {
            PimMode::SingleBank => self.inner.open_row(bank),
            _ => self.ab.open_row,
        }
    }

    fn timing(&self) -> &TimingParams {
        self.inner.timing()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instruction, Operand};

    /// Issues a command sequence back-to-back at the earliest legal cycles.
    fn run(ch: &mut PimChannel, cmds: &[Command], mut now: Cycle) -> Cycle {
        for c in cmds {
            let at = ch.earliest_issue(c, now);
            ch.issue(c, at).unwrap_or_else(|e| panic!("{c} at {at}: {e}"));
            now = at;
        }
        now
    }

    fn fresh() -> PimChannel {
        PimChannel::new(TimingParams::hbm2(), PimConfig::paper())
    }

    #[test]
    fn starts_in_single_bank_mode_as_plain_hbm() {
        let mut ch = fresh();
        assert_eq!(ch.mode(), PimMode::SingleBank);
        // Plain DRAM traffic works untouched.
        let b = BankAddr::new(1, 2);
        run(
            &mut ch,
            &[
                Command::Act { bank: b, row: 10 },
                Command::Wr { bank: b, col: 3, data: [7; 32] },
                Command::Rd { bank: b, col: 3 },
            ],
            0,
        );
        assert_eq!(ch.dram().bank(b).peek_block(10, 3), [7; 32]);
    }

    #[test]
    fn abmr_sequence_enters_ab_mode() {
        let mut ch = fresh();
        run(&mut ch, &enter_ab_sequence(), 0);
        assert_eq!(ch.mode(), PimMode::AllBank);
        assert_eq!(ch.stats().mode_transitions, 1);
    }

    #[test]
    fn sbmr_sequence_exits_ab_mode() {
        let mut ch = fresh();
        let now = run(&mut ch, &enter_ab_sequence(), 0);
        let _ = run(&mut ch, &exit_ab_sequence(), now);
        assert_eq!(ch.mode(), PimMode::SingleBank);
        assert!(ch.dram().all_banks_closed());
    }

    #[test]
    fn plain_act_pre_does_not_transition() {
        let mut ch = fresh();
        let b = BankAddr::new(0, 0);
        run(&mut ch, &[Command::Act { bank: b, row: 5 }, Command::Pre { bank: b }], 0);
        assert_eq!(ch.mode(), PimMode::SingleBank);
    }

    #[test]
    fn intervening_column_cancels_pending_transition() {
        let mut ch = fresh();
        let b = BankAddr::new(0, 0);
        run(
            &mut ch,
            &[
                Command::Act { bank: b, row: ABMR_ROW },
                Command::Rd { bank: b, col: 0 },
                Command::Pre { bank: b },
            ],
            0,
        );
        assert_eq!(ch.mode(), PimMode::SingleBank);
    }

    #[test]
    fn ab_mode_broadcast_write_reaches_all_banks() {
        let mut ch = fresh();
        let now = run(&mut ch, &enter_ab_sequence(), 0);
        let b = BankAddr::new(0, 0);
        run(
            &mut ch,
            &[
                Command::Act { bank: b, row: 4 },
                Command::Wr { bank: b, col: 2, data: [0xCD; 32] },
                Command::Pre { bank: b },
            ],
            now,
        );
        for bank in BankAddr::all() {
            assert_eq!(ch.dram().bank(bank).peek_block(4, 2), [0xCD; 32], "{bank}");
        }
    }

    #[test]
    fn ab_mode_columns_pace_at_tccd_l() {
        let mut ch = fresh();
        let t = ch.timing().clone();
        let now = run(&mut ch, &enter_ab_sequence(), 0);
        let b = BankAddr::new(0, 0);
        let now = run(&mut ch, &[Command::Act { bank: b, row: 0 }], now);
        let first = ch.earliest_issue(&Command::Rd { bank: b, col: 0 }, now);
        ch.issue(&Command::Rd { bank: b, col: 0 }, first).unwrap();
        let second = ch.earliest_issue(&Command::Rd { bank: b, col: 1 }, first);
        assert_eq!(second, first + t.t_ccd_l);
    }

    #[test]
    fn pim_op_mode_toggles_ab_pim() {
        let mut ch = fresh();
        let now = run(&mut ch, &enter_ab_sequence(), 0);
        let now = run(&mut ch, &set_pim_op_mode_sequence(true), now);
        assert_eq!(ch.mode(), PimMode::AllBankPim);
        let _ = run(&mut ch, &set_pim_op_mode_sequence(false), now);
        assert_eq!(ch.mode(), PimMode::AllBank);
    }

    #[test]
    fn pim_op_mode_ignored_in_sb_mode() {
        let mut ch = fresh();
        run(&mut ch, &set_pim_op_mode_sequence(true), 0);
        assert_eq!(ch.mode(), PimMode::SingleBank);
    }

    /// End-to-end: program a broadcast-MOV microkernel through memory-mapped
    /// CRF writes, run it with RD triggers, and read results back per unit
    /// in SB mode — entirely with standard DRAM commands.
    #[test]
    fn full_pim_round_trip_with_standard_commands() {
        let mut ch = fresh();
        let b = BankAddr::new(0, 0);

        // Seed distinct data in every even bank at row 1, col 0 (SB mode
        // writes — the "weights" the kernel will read).
        for u in 0..8u8 {
            let bank = BankAddr::from_flat_index(2 * u as usize);
            let block = LaneVec::from_f32([u as f32 + 1.0; 16]).to_block();
            ch.dram_mut().bank_mut(bank).poke_block(1, 0, &block);
        }

        // Enter AB mode; program the CRF: MOV GRF_A[0] <- EVEN_BANK; EXIT.
        let now = run(&mut ch, &enter_ab_sequence(), 0);
        let prog = [
            Instruction::Mov {
                dst: Operand::grf_a(0),
                src: Operand::even_bank(),
                relu: false,
                aam: false,
            },
            Instruction::Exit,
        ];
        let mut crf_block = [0u8; 32];
        for (i, ins) in prog.iter().enumerate() {
            crf_block[i * 4..i * 4 + 4].copy_from_slice(&ins.encode().to_le_bytes());
        }
        let now = run(
            &mut ch,
            &[
                Command::Act { bank: b, row: CRF_ROW },
                Command::Wr { bank: b, col: 0, data: crf_block },
                Command::Pre { bank: b },
            ],
            now,
        );

        // Enter AB-PIM and fire one RD trigger on data row 1.
        let now = run(&mut ch, &set_pim_op_mode_sequence(true), now);
        let now = run(
            &mut ch,
            &[
                Command::Act { bank: b, row: 1 },
                Command::Rd { bank: b, col: 0 },
                Command::Pre { bank: b },
            ],
            now,
        );
        assert_eq!(ch.stats().pim_triggers, 8);

        // Leave PIM, return to SB, and read unit 3's GRF_A[0] back through
        // the memory-mapped GRF row of bank 6 (unit 3's even bank).
        let now = run(&mut ch, &set_pim_op_mode_sequence(false), now);
        let now = run(&mut ch, &exit_ab_sequence(), now);
        assert_eq!(ch.mode(), PimMode::SingleBank);
        let bank6 = BankAddr::from_flat_index(6);
        let mut got = None;
        let cmds = [
            Command::Act { bank: bank6, row: GRF_ROW },
            Command::Rd { bank: bank6, col: 0 },
            Command::Pre { bank: bank6 },
        ];
        let mut t = now;
        for c in &cmds {
            let at = ch.earliest_issue(c, t);
            let out = ch.issue(c, at).unwrap();
            if out.data.is_some() {
                got = out.data;
            }
            t = at;
        }
        let v = LaneVec::from_block(&got.unwrap());
        assert_eq!(v.to_f32(), [4.0; 16], "unit 3 loaded even bank 6's value 3+1");
    }

    #[test]
    fn ab_pim_rd_returns_no_external_data() {
        let mut ch = fresh();
        let b = BankAddr::new(0, 0);
        let now = run(&mut ch, &enter_ab_sequence(), 0);
        let now = run(&mut ch, &set_pim_op_mode_sequence(true), now);
        let now = run(&mut ch, &[Command::Act { bank: b, row: 0 }], now);
        let at = ch.earliest_issue(&Command::Rd { bank: b, col: 0 }, now);
        let out = ch.issue(&Command::Rd { bank: b, col: 0 }, at).unwrap();
        assert_eq!(out.data, None, "AB-PIM reads do not drive the external I/O");
    }

    #[test]
    fn srf_row_write_loads_both_files() {
        let mut ch = fresh();
        let b = BankAddr::new(0, 0);
        let now = run(&mut ch, &enter_ab_sequence(), 0);
        let mut vals = [0.0f32; 16];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = i as f32 * 0.5;
        }
        let block = LaneVec::from_f32(vals).to_block();
        run(
            &mut ch,
            &[
                Command::Act { bank: b, row: SRF_ROW },
                Command::Wr { bank: b, col: 0, data: block },
                Command::Pre { bank: b },
            ],
            now,
        );
        for u in 0..8 {
            assert_eq!(ch.unit(u).srf_m().read(2).to_f32(), 1.0);
            assert_eq!(ch.unit(u).srf_a().read(2).to_f32(), 5.0);
        }
    }

    #[test]
    fn recorder_observes_transitions_crf_and_triggers() {
        let mut ch = fresh();
        ch.set_recorder(Recorder::vec(), 0);
        let b = BankAddr::new(0, 0);
        let now = run(&mut ch, &enter_ab_sequence(), 0);
        // Program a one-instruction kernel so triggers execute.
        let prog = [
            Instruction::Mov {
                dst: Operand::grf_a(0),
                src: Operand::even_bank(),
                relu: false,
                aam: false,
            },
            Instruction::Exit,
        ];
        let mut crf_block = [0u8; 32];
        for (i, ins) in prog.iter().enumerate() {
            crf_block[i * 4..i * 4 + 4].copy_from_slice(&ins.encode().to_le_bytes());
        }
        let now = run(
            &mut ch,
            &[
                Command::Act { bank: b, row: CRF_ROW },
                Command::Wr { bank: b, col: 0, data: crf_block },
                Command::Pre { bank: b },
            ],
            now,
        );
        let now = run(&mut ch, &set_pim_op_mode_sequence(true), now);
        let now = run(
            &mut ch,
            &[
                Command::Act { bank: b, row: 1 },
                Command::Rd { bank: b, col: 0 },
                Command::Pre { bank: b },
            ],
            now,
        );
        let now = run(&mut ch, &set_pim_op_mode_sequence(false), now);
        let _ = run(&mut ch, &exit_ab_sequence(), now);

        let r = ch.recorder().unwrap();
        let m = r.metrics().registry;
        assert_eq!(m.counter(pim_obs::names::DEV_MODE_TRANSITIONS), ch.stats().mode_transitions);
        assert_eq!(m.counter(pim_obs::names::DEV_CRF_LOADS), 8 * 8, "8 words x 8 units");
        assert_eq!(m.counter(pim_obs::names::DEV_PIM_TRIGGERS), 8);
        assert!(m.counter(pim_obs::names::DEV_UNIT_BUSY_CYCLES) > 0);
        let events = r.events().unwrap();
        let modes: Vec<&str> = events
            .iter()
            .filter(|e| e.cat == pim_obs::names::CAT_MODE)
            .map(|e| e.name.as_ref())
            .collect();
        assert_eq!(modes, ["SB->AB", "AB->AB-PIM", "AB-PIM->AB", "AB->SB"]);
    }

    #[test]
    fn exit_quiesces_sb_timing() {
        let mut ch = fresh();
        let now = run(&mut ch, &enter_ab_sequence(), 0);
        let b = BankAddr::new(0, 0);
        let now = run(
            &mut ch,
            &[
                Command::Act { bank: b, row: 2 },
                Command::Rd { bank: b, col: 0 },
                Command::Pre { bank: b },
            ],
            now,
        );
        let end = run(&mut ch, &exit_ab_sequence(), now);
        // An SB command must not be allowed before AB activity ended.
        let e = ch.earliest_issue(&Command::Act { bank: b, row: 0 }, 0);
        assert!(e >= end, "SB ACT at {e} before AB activity ended at {end}");
    }
}
