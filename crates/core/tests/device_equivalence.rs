//! Property-based equivalence: in single-bank mode, a PIM-HBM channel is
//! observationally identical to a plain HBM2 channel under arbitrary
//! legal traffic — data AND timing. This is the drop-in-replacement
//! property ("the PIM-HBM's technical specifications seen by the host
//! processor ... are precisely the same as conventional HBM2",
//! Section VI), checked over random request streams.

use pim_core::{PimChannel, PimConfig};
use pim_dram::{
    AddressMapping, BankAddr, ControllerConfig, MemoryController, PseudoChannel, Request,
    SchedulingPolicy, TimingParams,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Read(u64),
    Write(u64, u8),
}

/// Addresses below the PIM_CONF rows (ordinary data space).
fn data_addr() -> impl Strategy<Value = u64> {
    let m = AddressMapping::new(16);
    (0u32..64, 0u8..4, 0u8..4, 0u32..8)
        .prop_map(move |(row, bg, ba, col)| m.block_addr(0, BankAddr::new(bg, ba), row, col * 4))
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            data_addr().prop_map(Op::Read),
            (data_addr(), any::<u8>()).prop_map(|(a, v)| Op::Write(a, v)),
        ],
        1..60,
    )
}

fn run_stream<S: pim_dram::CommandSink>(
    mut ctrl: MemoryController<S>,
    stream: &[Op],
) -> Vec<(u64, Option<[u8; 32]>, u64, u64)> {
    for op in stream {
        match op {
            Op::Read(a) => {
                ctrl.enqueue(Request::read(*a));
            }
            Op::Write(a, v) => {
                ctrl.enqueue(Request::write(*a, [*v; 32]));
            }
        }
    }
    ctrl.run_to_completion()
        .into_iter()
        .map(|c| (c.seq, c.data, c.issued_at, c.completed_at))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under both scheduling policies, every observable of the two devices
    /// matches: completion order, data, issue cycles, completion cycles.
    #[test]
    fn sb_mode_is_observationally_hbm2(
        stream in ops(),
        frfcfs in any::<bool>(),
    ) {
        let cfg = ControllerConfig {
            policy: if frfcfs { SchedulingPolicy::FrFcfs } else { SchedulingPolicy::InOrder },
            refresh_enabled: false,
            ..Default::default()
        };
        let plain = MemoryController::with_sink(
            cfg.clone(),
            PseudoChannel::new(TimingParams::hbm2()),
        );
        let pim = MemoryController::with_sink(
            cfg,
            PimChannel::new(TimingParams::hbm2(), PimConfig::paper()),
        );
        let a = run_stream(plain, &stream);
        let b = run_stream(pim, &stream);
        prop_assert_eq!(a, b);
    }
}
