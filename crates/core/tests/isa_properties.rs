//! Property-based tests for the PIM ISA and execution unit.

use pim_core::isa::{Instruction, Operand, OperandKind};
use pim_core::{LaneVec, PimUnit, Trigger, TriggerKind};
use pim_fp16::F16;
use proptest::prelude::*;

fn any_operand_kind() -> impl Strategy<Value = OperandKind> {
    prop_oneof![
        Just(OperandKind::GrfA),
        Just(OperandKind::GrfB),
        Just(OperandKind::EvenBank),
        Just(OperandKind::OddBank),
        Just(OperandKind::SrfM),
        Just(OperandKind::SrfA),
        Just(OperandKind::Wdata),
    ]
}

fn any_operand() -> impl Strategy<Value = Operand> {
    (any_operand_kind(), 0u8..8).prop_map(|(k, i)| Operand::new(k, i))
}

fn any_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (1u32..0x1FFFF).prop_map(|c| Instruction::Nop { cycles: c }),
        (0u8..32, 1u32..0x1FFFF).prop_map(|(t, c)| Instruction::Jump { target: t, count: c }),
        Just(Instruction::Exit),
        (any_operand(), any_operand(), any::<bool>(), any::<bool>())
            .prop_map(|(dst, src, relu, aam)| Instruction::Mov { dst, src, relu, aam }),
        (any_operand(), any_operand(), any::<bool>())
            .prop_map(|(dst, src, aam)| Instruction::Fill { dst, src, aam }),
        (any_operand(), any_operand(), any_operand(), any::<bool>())
            .prop_map(|(dst, src0, src1, aam)| Instruction::Add { dst, src0, src1, aam }),
        (any_operand(), any_operand(), any_operand(), any::<bool>())
            .prop_map(|(dst, src0, src1, aam)| Instruction::Mul { dst, src0, src1, aam }),
        (any_operand(), any_operand(), any_operand(), any::<bool>())
            .prop_map(|(dst, src0, src1, aam)| Instruction::Mac { dst, src0, src1, aam }),
        (any_operand(), any_operand(), any_operand(), any::<bool>())
            .prop_map(|(dst, src0, src1, aam)| Instruction::Mad { dst, src0, src1, aam }),
    ]
}

proptest! {
    /// Every constructible instruction encodes to 32 bits and decodes back
    /// to itself — the Table III format is lossless over the field space.
    #[test]
    fn encode_decode_roundtrip(instr in any_instruction()) {
        let word = instr.encode();
        prop_assert_eq!(Instruction::decode(word), Ok(instr));
    }

    /// Decoding never panics on arbitrary 32-bit words, and every
    /// successfully decoded word re-encodes to a word that decodes to the
    /// same instruction (canonicalization is stable).
    #[test]
    fn decode_total_and_stable(word in any::<u32>()) {
        if let Ok(i) = Instruction::decode(word) {
            let w2 = i.encode();
            prop_assert_eq!(Instruction::decode(w2), Ok(i));
        }
    }

    /// The unit never panics executing any *valid* single instruction, and
    /// a halted unit stays halted.
    #[test]
    fn unit_executes_valid_programs(instr in any_instruction(), col in 0u32..32) {
        if instr.validate().is_err() {
            return Ok(());
        }
        let mut u = PimUnit::new();
        u.crf_mut().load_program(&[instr, Instruction::Exit]);
        u.reset_sequencer();
        let trig = Trigger {
            kind: TriggerKind::Write(LaneVec::splat(F16::from_f32(1.0))),
            row: 0,
            col,
            even_data: LaneVec::splat(F16::from_f32(2.0)),
            odd_data: LaneVec::splat(F16::from_f32(3.0)),
        };
        // Drive enough triggers to drain multi-cycle NOPs and loops.
        let mut halted = false;
        for _ in 0..200_000 {
            let out = u.execute(&trig);
            if out.halted {
                halted = true;
                break;
            }
        }
        // Either the unit halted or the instruction is an unbounded NOP/JUMP
        // longer than our trigger budget — both are fine; what matters is no
        // panic and monotone stats.
        prop_assert!(u.stats().instructions > 0 || halted);
    }

    /// MAC through the unit equals the scalar reference on every lane.
    #[test]
    fn unit_mac_matches_reference(
        a in proptest::array::uniform16(-100.0f32..100.0),
        b in proptest::array::uniform16(-100.0f32..100.0),
        acc0 in -100.0f32..100.0,
    ) {
        let mut u = PimUnit::new();
        u.crf_mut().load_program(&[
            Instruction::Mac {
                dst: Operand::grf_b(0),
                src0: Operand::even_bank(),
                src1: Operand::grf_a(0),
                aam: false,
            },
            Instruction::Exit,
        ]);
        u.reset_sequencer();
        u.grf_a_mut().write(0, LaneVec::from_f32(b));
        u.grf_b_mut().write(0, LaneVec::splat(F16::from_f32(acc0)));
        u.execute(&Trigger {
            kind: TriggerKind::Read,
            row: 0,
            col: 0,
            even_data: LaneVec::from_f32(a),
            odd_data: LaneVec::zero(),
        });
        let got = u.grf_b().read(0);
        for lane in 0..16 {
            let want = F16::from_f32(a[lane])
                .mac(F16::from_f32(b[lane]), F16::from_f32(acc0));
            prop_assert_eq!(got[lane].to_bits(), want.to_bits(), "lane {}", lane);
        }
    }

    /// Every valid instruction's assembly text re-assembles to itself:
    /// the assembler and `Display` agree by construction.
    #[test]
    fn asm_display_roundtrip(instr in any_instruction()) {
        if instr.validate().is_err() {
            return Ok(());
        }
        // Bank/WDATA operands carry no meaningful register index; the
        // textual form canonicalizes it to 0.
        fn canon_op(o: Operand) -> Operand {
            if o.kind.is_bank() || o.kind == OperandKind::Wdata {
                Operand::new(o.kind, 0)
            } else {
                o
            }
        }
        fn canon(i: Instruction) -> Instruction {
            match i {
                Instruction::Mov { dst, src, relu, aam } => {
                    Instruction::Mov { dst: canon_op(dst), src: canon_op(src), relu, aam }
                }
                Instruction::Fill { dst, src, aam } => {
                    Instruction::Fill { dst: canon_op(dst), src: canon_op(src), aam }
                }
                Instruction::Add { dst, src0, src1, aam } => Instruction::Add {
                    dst: canon_op(dst),
                    src0: canon_op(src0),
                    src1: canon_op(src1),
                    aam,
                },
                Instruction::Mul { dst, src0, src1, aam } => Instruction::Mul {
                    dst: canon_op(dst),
                    src0: canon_op(src0),
                    src1: canon_op(src1),
                    aam,
                },
                Instruction::Mac { dst, src0, src1, aam } => Instruction::Mac {
                    dst: canon_op(dst),
                    src0: canon_op(src0),
                    src1: canon_op(src1),
                    aam,
                },
                Instruction::Mad { dst, src0, src1, aam } => Instruction::Mad {
                    dst: canon_op(dst),
                    src0: canon_op(src0),
                    src1: canon_op(src1),
                    aam,
                },
                other => other,
            }
        }
        let text = format!("{instr}");
        let parsed = pim_core::asm::assemble(&text)
            .map_err(|e| TestCaseError::fail(format!("`{text}`: {e}")))?;
        prop_assert_eq!(parsed, vec![canon(instr)], "`{}`", text);
    }

    /// A JUMP loop of `n` MACs consumes exactly `n` triggers then halts on
    /// the next — the deterministic lock-step contract the host relies on.
    #[test]
    fn jump_loop_trigger_count_is_exact(n in 1u32..64) {
        let mut u = PimUnit::new();
        u.crf_mut().load_program(&[
            Instruction::Add {
                dst: Operand::grf_a(0),
                src0: Operand::grf_a(1),
                src1: Operand::grf_b(0),
                aam: false,
            },
            Instruction::Jump { target: 0, count: n },
            Instruction::Exit,
        ]);
        u.reset_sequencer();
        let trig = Trigger {
            kind: TriggerKind::Read,
            row: 0,
            col: 0,
            even_data: LaneVec::zero(),
            odd_data: LaneVec::zero(),
        };
        for i in 0..n {
            let out = u.execute(&trig);
            prop_assert!(!out.halted, "halted early at trigger {}", i);
            let was_add = matches!(out.executed, Some(Instruction::Add { .. }));
            prop_assert!(was_add);
        }
        prop_assert!(u.execute(&trig).halted);
    }
}
