//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the *small API subset it actually uses* behind the same
//! module paths (`rand::rngs::SmallRng`, `rand::SeedableRng`,
//! `rand::seq::SliceRandom`). The generator is a xoshiro256**-style PRNG —
//! deterministic for a given seed, which is all the simulator needs (seeded,
//! reproducible shuffles). It makes no statistical-quality or
//! value-compatibility claims versus the real `rand` crate.

#![forbid(unsafe_code)]

/// Core random-number generation interface (subset).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of RNGs from seeds (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience extension trait (subset).
pub trait Rng: RngCore {
    /// Returns a value uniformly distributed in `[low, high)`.
    fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + self.next_u64() % span
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable PRNG (xoshiro256** core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions (subset: `shuffle`).

    use super::RngCore;

    /// Extension methods on slices (subset).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{RngCore, SeedableRng};

    #[test]
    fn seeded_runs_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 16);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = SmallRng::seed_from_u64(7);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle changed order");
    }
}
