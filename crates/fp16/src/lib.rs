//! From-scratch IEEE-754 binary16 (`F16`) and bfloat16 (`Bf16`) softfloat
//! arithmetic for the PIM-HBM datapath.
//!
//! The PIM execution unit of the paper ("Hardware Architecture and Software
//! Stack for PIM Based on Commercial DRAM Technology", ISCA 2021) computes on
//! 16-bit half-precision floating-point values: a 256-bit datapath holds 16
//! FP16 lanes, and each lane owns one FP16 multiplier and one FP16 adder
//! (Section IV-A, Table IV). This crate provides the exact scalar arithmetic
//! those lanes perform, so that the simulator in `pim-core` is functionally
//! accurate, bit for bit.
//!
//! # Correct rounding strategy
//!
//! Bit-level conversions between `f32` and the 16-bit formats are implemented
//! from scratch (see [`F16::from_f32`] and [`Bf16::from_f32`]); they perform
//! round-to-nearest-even including subnormal handling. Individual arithmetic
//! operations (`+`, `-`, `*`, `/`) are computed by converting the exactly
//! representable operands to `f32`, performing one correctly rounded `f32`
//! operation, and rounding the result back to 16 bits.
//!
//! This two-step scheme is *exactly* correctly rounded, not an approximation:
//! by the classical double-rounding theorem (Figueroa, 1995), rounding a
//! correctly rounded result from precision `q` to precision `p` equals direct
//! rounding whenever `q >= 2p + 2`. For binary16, `p = 11` and `f32` has
//! `q = 24 >= 2*11 + 2 = 24`; for bfloat16, `p = 8` and `24 >= 18`. Both
//! formats therefore get bit-exact IEEE-754 results for every single
//! operation.
//!
//! # MAC semantics of the PIM FPU
//!
//! The hardware's MAC is **not** a fused multiply-add: the multiplier and the
//! adder are separate pipeline stages (third and fourth stage, Section IV-B),
//! each of which rounds to FP16. [`F16::mac`] therefore computes
//! `round16(round16(a*b) + acc)`, and the simulator's GEMV results match what
//! the silicon would produce.
//!
//! # Example
//!
//! ```
//! use pim_fp16::F16;
//!
//! let a = F16::from_f32(1.5);
//! let b = F16::from_f32(2.0);
//! assert_eq!((a * b).to_f32(), 3.0);
//!
//! // The PIM MOV(ReLU) data-movement operation:
//! assert_eq!(F16::from_f32(-0.75).relu(), F16::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bf16;
mod f16;
pub mod intmac;
mod slice;
pub mod softfloat;

pub use bf16::Bf16;
pub use f16::F16;
pub use slice::{f16_slice_to_f32, f32_slice_to_f16, max_abs_error, max_ulp_error};

/// Number formats evaluated for the PIM MAC unit in Table I of the paper.
///
/// The paper compares MAC units in a 20nm DRAM logic process across these
/// formats and chooses FP16 (Section III-C). The area/energy figures that go
/// with each format live in `pim-energy`; this enum is the shared vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NumberFormat {
    /// 16-bit integer with a 48-bit accumulator (Table I baseline).
    Int16Acc48,
    /// 8-bit integer with a 48-bit accumulator.
    Int8Acc48,
    /// 8-bit integer with a 32-bit accumulator.
    Int8Acc32,
    /// IEEE-754 binary16 — the format the PIM-HBM silicon implements.
    Fp16,
    /// bfloat16 (8-bit exponent, 7-bit fraction).
    Bfloat16,
    /// IEEE-754 binary32 — rejected in the paper as too large for DRAM logic.
    Fp32,
}

impl NumberFormat {
    /// All formats in Table I order.
    pub const ALL: [NumberFormat; 6] = [
        NumberFormat::Int16Acc48,
        NumberFormat::Int8Acc48,
        NumberFormat::Int8Acc32,
        NumberFormat::Fp16,
        NumberFormat::Bfloat16,
        NumberFormat::Fp32,
    ];

    /// The human-readable label used in Table I.
    pub fn label(self) -> &'static str {
        match self {
            NumberFormat::Int16Acc48 => "INT16 (w/ 48-bit Acc.)",
            NumberFormat::Int8Acc48 => "INT8 (w/ 48-bit Acc.)",
            NumberFormat::Int8Acc32 => "INT8 (w/ 32-bit Acc.)",
            NumberFormat::Fp16 => "FP16",
            NumberFormat::Bfloat16 => "BFLOAT16",
            NumberFormat::Fp32 => "FP32",
        }
    }

    /// Width in bits of one operand in this format.
    pub fn operand_bits(self) -> u32 {
        match self {
            NumberFormat::Int16Acc48 | NumberFormat::Fp16 | NumberFormat::Bfloat16 => 16,
            NumberFormat::Int8Acc48 | NumberFormat::Int8Acc32 => 8,
            NumberFormat::Fp32 => 32,
        }
    }
}

impl std::fmt::Display for NumberFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_labels_match_table1() {
        assert_eq!(NumberFormat::Fp16.label(), "FP16");
        assert_eq!(NumberFormat::Int16Acc48.label(), "INT16 (w/ 48-bit Acc.)");
        assert_eq!(NumberFormat::ALL.len(), 6);
    }

    #[test]
    fn operand_bits() {
        assert_eq!(NumberFormat::Fp16.operand_bits(), 16);
        assert_eq!(NumberFormat::Int8Acc32.operand_bits(), 8);
        assert_eq!(NumberFormat::Fp32.operand_bits(), 32);
    }
}
