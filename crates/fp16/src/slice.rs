//! Slice conversion and error-measurement helpers.
//!
//! The software stack moves tensors between the host's `f32` world and the
//! PIM device's binary16 world; these helpers are the single place where
//! that happens, and the error metrics are what the test suite uses to
//! compare PIM results against `f32` references.

use crate::F16;

/// Converts a slice of `f32` to binary16 with round-to-nearest-even.
///
/// ```
/// use pim_fp16::{f32_slice_to_f16, F16};
/// let v = f32_slice_to_f16(&[1.0, 2.0]);
/// assert_eq!(v, vec![F16::from_f32(1.0), F16::from_f32(2.0)]);
/// ```
pub fn f32_slice_to_f16(src: &[f32]) -> Vec<F16> {
    src.iter().map(|&x| F16::from_f32(x)).collect()
}

/// Converts a slice of binary16 to `f32` (exact).
///
/// ```
/// use pim_fp16::{f16_slice_to_f32, F16};
/// let v = f16_slice_to_f32(&[F16::ONE]);
/// assert_eq!(v, vec![1.0]);
/// ```
pub fn f16_slice_to_f32(src: &[F16]) -> Vec<f32> {
    src.iter().map(|x| x.to_f32()).collect()
}

/// Maximum absolute difference between a binary16 result and an `f32`
/// reference, element-wise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_abs_error(result: &[F16], reference: &[f32]) -> f32 {
    assert_eq!(result.len(), reference.len(), "result and reference must have the same length");
    result.iter().zip(reference.iter()).map(|(r, &x)| (r.to_f32() - x).abs()).fold(0.0f32, f32::max)
}

/// Maximum error in binary16 ULPs between a result and the correctly rounded
/// binary16 value of an `f32` reference.
///
/// An accumulation of `n` MACs in binary16 legitimately drifts from the f32
/// reference; tests bound that drift in ULPs of the reference magnitude.
///
/// # Panics
///
/// Panics if the slices have different lengths or if either side contains a
/// non-finite value.
pub fn max_ulp_error(result: &[F16], reference: &[f32]) -> u32 {
    assert_eq!(result.len(), reference.len());
    result
        .iter()
        .zip(reference.iter())
        .map(|(r, &x)| {
            assert!(r.is_finite(), "non-finite result {r:?}");
            let want = F16::from_f32(x);
            assert!(want.is_finite(), "non-finite reference {x}");
            ulp_distance(*r, want)
        })
        .max()
        .unwrap_or(0)
}

/// ULP distance between two finite binary16 values, using the total-order
/// integer mapping (so the distance across zero is well defined).
fn ulp_distance(a: F16, b: F16) -> u32 {
    let ka = order_key(a);
    let kb = order_key(b);
    ka.abs_diff(kb)
}

fn order_key(x: F16) -> i32 {
    let bits = x.to_bits() as i32;
    if bits & 0x8000 != 0 {
        0x8000 - bits
    } else {
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_slices() {
        let src = [0.0f32, 1.0, -2.5, 100.0];
        let h = f32_slice_to_f16(&src);
        let back = f16_slice_to_f32(&h);
        assert_eq!(back, src.to_vec());
    }

    #[test]
    fn abs_error_of_exact_values_is_zero() {
        let src = [1.0f32, 2.0, 4.0];
        let h = f32_slice_to_f16(&src);
        assert_eq!(max_abs_error(&h, &src), 0.0);
    }

    #[test]
    fn ulp_error_counts_steps() {
        let one = F16::from_f32(1.0);
        let next = F16::from_bits(one.to_bits() + 1);
        assert_eq!(max_ulp_error(&[next], &[1.0]), 1);
        assert_eq!(max_ulp_error(&[one], &[1.0]), 0);
    }

    #[test]
    fn ulp_distance_across_zero() {
        let pos = F16::from_bits(0x0001);
        let neg = F16::from_bits(0x8001);
        assert_eq!(ulp_distance(pos, neg), 2);
        assert_eq!(ulp_distance(pos, F16::ZERO), 1);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        max_abs_error(&[F16::ONE], &[1.0, 2.0]);
    }
}
