//! IEEE-754 binary16 implemented from scratch on top of a `u16` bit pattern.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An IEEE-754 binary16 ("half precision") floating-point number.
///
/// Layout: 1 sign bit, 5 exponent bits (bias 15), 10 fraction bits.
/// This is the number format of every lane of the PIM execution unit's
/// 16-wide SIMD FPU (Table IV of the paper).
///
/// All conversions and operations round to nearest, ties to even, exactly as
/// IEEE-754 requires; see the crate-level documentation for the correctness
/// argument.
///
/// # Example
///
/// ```
/// use pim_fp16::F16;
///
/// let x = F16::from_f32(0.1);
/// // 0.1 is not representable; the nearest binary16 is 0.0999755859375.
/// assert!((x.to_f32() - 0.1).abs() < 1e-4);
/// assert_eq!(F16::from_bits(x.to_bits()), x);
/// ```
#[derive(Clone, Copy, Default)]
pub struct F16(u16);

const EXP_BITS: u32 = 5;
const FRAC_BITS: u32 = 10;
const EXP_BIAS: i32 = 15;
const EXP_MASK: u16 = ((1 << EXP_BITS) - 1) << FRAC_BITS; // 0x7C00
const FRAC_MASK: u16 = (1 << FRAC_BITS) - 1; // 0x03FF
const SIGN_MASK: u16 = 0x8000;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value, `65504.0`.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest finite value, `-65504.0`.
    pub const MIN: F16 = F16(0xFBFF);
    /// Smallest positive normal value, `2^-14`.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, `2^-24`.
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// The difference between `1.0` and the next larger representable value,
    /// `2^-10`.
    pub const EPSILON: F16 = F16(0x1400);

    /// Creates a value from its raw IEEE-754 binary16 bit pattern.
    ///
    /// ```
    /// use pim_fp16::F16;
    /// assert_eq!(F16::from_bits(0x3C00), F16::ONE);
    /// ```
    #[inline]
    pub const fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// Returns the raw IEEE-754 binary16 bit pattern.
    ///
    /// ```
    /// use pim_fp16::F16;
    /// assert_eq!(F16::ONE.to_bits(), 0x3C00);
    /// ```
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to binary16 with round-to-nearest-even.
    ///
    /// Values too large for binary16 become infinity; values too small become
    /// (possibly signed) zero, passing through the subnormal range with
    /// correct rounding. NaN payloads are not preserved beyond quietness.
    ///
    /// This is a from-scratch bit manipulation, not a cast: it is the
    /// reference conversion everything else in the workspace relies on.
    pub fn from_f32(value: f32) -> F16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let frac = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Infinity or NaN.
            return if frac == 0 {
                F16(sign | EXP_MASK)
            } else {
                // Quiet NaN; keep the top fraction bit set.
                F16(sign | EXP_MASK | 0x0200 | ((frac >> 13) as u16 & FRAC_MASK))
            };
        }

        // Unbiased exponent of the f32 value (f32 bias is 127).
        let unbiased = exp - 127;
        // Target binary16 biased exponent.
        let half_exp = unbiased + EXP_BIAS;

        if half_exp >= 0x1F {
            // Overflow to infinity. (Round-to-nearest-even sends everything
            // at or above 65520 to infinity; 65519.996.. rounds to MAX. The
            // threshold falls out of the exponent check because values below
            // 2^16 - 2^4 have half_exp == 0x1E after rounding, handled below
            // via mantissa carry.)
            return F16(sign | EXP_MASK);
        }

        // Full 24-bit significand of the f32 (with implicit leading one when
        // normal).
        let significand = frac | if exp != 0 { 0x0080_0000 } else { 0 };

        if half_exp <= 0 {
            // The value is subnormal in binary16 (or underflows to zero).
            // We need to shift the significand right by (14 - unbiased)
            // + 13 extra bits; i.e. total shift = 13 + 1 - half_exp.
            let shift = 14 - half_exp; // >= 14, applied to the 24-bit sig.
            if shift > 24 {
                // The value is below half of the smallest subnormal (the
                // 24-bit significand is < 2^24 == the rounding midpoint at
                // shift 25), so it always underflows to signed zero.
                return F16(sign);
            }
            let shifted = significand >> shift;
            let remainder = significand & ((1u32 << shift) - 1);
            let half = 1u32 << (shift - 1);
            let mut result = shifted as u16;
            if remainder > half || (remainder == half && (result & 1) == 1) {
                result += 1; // May carry into the exponent field: that is
                             // correct (smallest normal).
            }
            return F16(sign | result);
        }

        // Normal range: keep the top 11 bits of the 24-bit significand.
        let shift = 13u32;
        let shifted = significand >> shift; // 11 bits incl. leading one.
        let remainder = significand & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let mut result = ((half_exp as u16) << FRAC_BITS) | (shifted as u16 & FRAC_MASK);
        if remainder > half || (remainder == half && (result & 1) == 1) {
            result += 1; // Carry may roll fraction into exponent and exponent
                         // into infinity — all correct by construction.
        }
        F16(sign | result)
    }

    /// Converts to `f32`. This conversion is exact: every binary16 value is
    /// representable in binary32.
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & SIGN_MASK) as u32) << 16;
        let exp = ((self.0 & EXP_MASK) >> FRAC_BITS) as u32;
        let frac = (self.0 & FRAC_MASK) as u32;

        let bits = if exp == 0 {
            if frac == 0 {
                sign // signed zero
            } else {
                // Subnormal: renormalize. value = frac * 2^-24 with the
                // highest set bit of `frac` at position p: 1.m * 2^(p-24).
                let shift = frac.leading_zeros() - 21; // 10 - p
                let normalized_frac = (frac << shift) & 0x3FF;
                let exp32 = 113 - shift; // (10 - shift) + (127 - 24)
                sign | (exp32 << 23) | (normalized_frac << 13)
            }
        } else if exp == 0x1F {
            if frac == 0 {
                sign | 0x7F80_0000
            } else {
                sign | 0x7FC0_0000 | (frac << 13)
            }
        } else {
            let exp32 = exp + (127 - 15);
            sign | (exp32 << 23) | (frac << 13)
        };
        f32::from_bits(bits)
    }

    /// Converts to `f64` (exact).
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// Converts from `f64` with a single correctly rounded step.
    ///
    /// Double rounding through `f64` (53 bits) down to 11 bits is safe by the
    /// same `q >= 2p + 2` argument as the `f32` path.
    pub fn from_f64(value: f64) -> F16 {
        // f64 -> f32 is correctly rounded; 24 >= 2*11+2 keeps the second step
        // exact as well.
        F16::from_f32(value as f32)
    }

    /// `true` if this value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & FRAC_MASK) != 0
    }

    /// `true` if this value is positive or negative infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & FRAC_MASK) == 0
    }

    /// `true` if this value is neither infinite nor NaN.
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// `true` if this value is subnormal (nonzero with a zero exponent field).
    pub fn is_subnormal(self) -> bool {
        (self.0 & EXP_MASK) == 0 && (self.0 & FRAC_MASK) != 0
    }

    /// `true` if this value is positive or negative zero.
    pub fn is_zero(self) -> bool {
        (self.0 & !SIGN_MASK) == 0
    }

    /// `true` if the sign bit is set (including `-0.0` and negative NaN).
    pub fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }

    /// The absolute value (clears the sign bit).
    pub fn abs(self) -> F16 {
        F16(self.0 & !SIGN_MASK)
    }

    /// The PIM `MOV(ReLU)` activation: zero for negative inputs, identity
    /// otherwise (Section III-C).
    ///
    /// The silicon implements ReLU as "a 2-to-1 multiplexer controlled by the
    /// sign bit of a given input value", which maps `-0.0` to `+0.0` and
    /// negative NaNs to zero as well; we reproduce exactly that mux.
    ///
    /// ```
    /// use pim_fp16::F16;
    /// assert_eq!(F16::from_f32(-3.0).relu(), F16::ZERO);
    /// assert_eq!(F16::from_f32(3.0).relu(), F16::from_f32(3.0));
    /// assert_eq!(F16::NEG_ZERO.relu(), F16::ZERO);
    /// ```
    pub fn relu(self) -> F16 {
        if self.is_sign_negative() {
            F16::ZERO
        } else {
            self
        }
    }

    /// The hardware MAC of the PIM FPU: `round16(round16(self * b) + acc)`.
    ///
    /// The multiplier (pipeline stage 3) and adder (stage 4) each round to
    /// binary16 — this is *not* a fused multiply-add. See the crate docs.
    ///
    /// ```
    /// use pim_fp16::F16;
    /// let acc = F16::from_f32(1.0);
    /// let r = F16::from_f32(2.0).mac(F16::from_f32(3.0), acc);
    /// assert_eq!(r.to_f32(), 7.0);
    /// ```
    pub fn mac(self, b: F16, acc: F16) -> F16 {
        (self * b) + acc
    }

    /// The hardware MAD: `round16(round16(self * b) + c)` where `c` comes
    /// from a different register file than the destination (Section III-C).
    /// Numerically identical to [`F16::mac`]; kept separate to mirror the ISA.
    pub fn mad(self, b: F16, c: F16) -> F16 {
        (self * b) + c
    }

    /// Total-order comparison key used by tests: maps the bit pattern to a
    /// monotonically increasing integer (negative values reversed).
    pub(crate) fn total_order_key(self) -> i32 {
        let bits = self.0 as i32;
        if bits & 0x8000 != 0 {
            0x8000 - bits
        } else {
            bits
        }
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({} /* 0x{:04X} */)", self.to_f32(), self.0)
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl PartialEq for F16 {
    /// IEEE semantics: NaN != NaN, and `-0.0 == +0.0`.
    fn eq(&self, other: &F16) -> bool {
        if self.is_nan() || other.is_nan() {
            return false;
        }
        if self.is_zero() && other.is_zero() {
            return true;
        }
        self.0 == other.0
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &F16) -> Option<Ordering> {
        if self.is_nan() || other.is_nan() {
            return None;
        }
        if self.is_zero() && other.is_zero() {
            return Some(Ordering::Equal);
        }
        Some(self.total_order_key().cmp(&other.total_order_key()))
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> F16 {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> f32 {
        v.to_f32()
    }
}

impl Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16(self.0 ^ SIGN_MASK)
    }
}

impl Add for F16 {
    type Output = F16;
    /// Correctly rounded binary16 addition (see crate docs for the double-
    /// rounding argument).
    fn add(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl Sub for F16 {
    type Output = F16;
    fn sub(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl Mul for F16 {
    type Output = F16;
    /// Correctly rounded binary16 multiplication.
    fn mul(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl Div for F16 {
    type Output = F16;
    /// Correctly rounded binary16 division. The PIM ISA has no divide; this
    /// exists for host-side reference computations.
    fn div(self, rhs: F16) -> F16 {
        F16::from_f32(self.to_f32() / rhs.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_bit_patterns() {
        assert_eq!(F16::ZERO.to_bits(), 0x0000);
        assert_eq!(F16::NEG_ZERO.to_bits(), 0x8000);
        assert_eq!(F16::ONE.to_bits(), 0x3C00);
        assert_eq!(F16::INFINITY.to_bits(), 0x7C00);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 2.0f32.powi(-14));
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f32(), 2.0f32.powi(-24));
        assert_eq!(F16::EPSILON.to_f32(), 2.0f32.powi(-10));
    }

    #[test]
    fn roundtrip_simple_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 100.0, -0.25, 65504.0] {
            assert_eq!(F16::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(F16::from_f32(1e6), F16::INFINITY);
        assert_eq!(F16::from_f32(-1e6), F16::NEG_INFINITY);
        assert_eq!(F16::from_f32(65520.0), F16::INFINITY); // exact midpoint ties to even=Inf
        assert_eq!(F16::from_f32(65519.0), F16::MAX);
    }

    #[test]
    fn underflow_and_subnormals() {
        // 2^-24 is the smallest subnormal.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(F16::from_f32(tiny).to_bits(), 0x0001);
        // Half of that ties to even => zero.
        assert_eq!(F16::from_f32(tiny / 2.0).to_bits(), 0x0000);
        // Slightly more than half rounds up.
        assert_eq!(F16::from_f32(tiny * 0.75).to_bits(), 0x0001);
        // Way below underflows to zero.
        assert_eq!(F16::from_f32(1e-30), F16::ZERO);
        assert_eq!(F16::from_f32(-1e-30), F16::NEG_ZERO);
        // Subnormal arithmetic round-trips exactly.
        let sub = F16::from_bits(0x0123);
        assert!(sub.is_subnormal());
        assert_eq!(F16::from_f32(sub.to_f32()).to_bits(), 0x0123);
    }

    #[test]
    fn subnormal_boundary_rounds_to_min_normal() {
        // The largest subnormal plus half a ULP rounds up into the normal
        // range — the mantissa carry must flow into the exponent field.
        let largest_sub = F16::from_bits(0x03FF).to_f32();
        let min_normal = F16::MIN_POSITIVE.to_f32();
        let mid = (largest_sub + min_normal) / 2.0;
        assert_eq!(F16::from_f32(mid).to_bits(), 0x0400);
    }

    #[test]
    fn nan_propagation() {
        assert!(F16::NAN.is_nan());
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!((F16::NAN + F16::ONE).is_nan());
        assert!((F16::NAN * F16::ONE).is_nan());
        assert!(F16::NAN != F16::NAN);
        assert!(F16::NAN.partial_cmp(&F16::ONE).is_none());
    }

    #[test]
    fn signed_zero_semantics() {
        assert_eq!(F16::NEG_ZERO, F16::ZERO);
        assert!(F16::NEG_ZERO.is_sign_negative());
        assert!(!F16::ZERO.is_sign_negative());
        assert_eq!(F16::NEG_ZERO.to_f32().to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    #[allow(clippy::approx_constant)] // arbitrary grid points, not uses of PI/E
    fn arithmetic_matches_f32_reference() {
        // Exhaustive-ish grid of interesting operands.
        let vals = [
            0.0f32, -0.0, 1.0, -1.0, 0.5, 1.5, 3.14159, -2.71828, 1e-3, 1e3, 65504.0, -65504.0,
            6.1e-5, 5.9e-8,
        ];
        for &a in &vals {
            for &b in &vals {
                let ha = F16::from_f32(a);
                let hb = F16::from_f32(b);
                let sum = (ha + hb).to_f32();
                let refsum = F16::from_f32(ha.to_f32() + hb.to_f32()).to_f32();
                assert_eq!(sum.to_bits(), refsum.to_bits(), "{a} + {b}");
                let prod = (ha * hb).to_f32();
                let refprod = F16::from_f32(ha.to_f32() * hb.to_f32()).to_f32();
                assert_eq!(prod.to_bits(), refprod.to_bits(), "{a} * {b}");
            }
        }
    }

    #[test]
    fn mac_is_two_step_rounded_not_fused() {
        // Pick operands where fused and two-step MAC differ:
        // a*b needs more than 11 bits; the intermediate rounding changes the
        // final sum. a = 1 + 2^-10 (ULP of 1), b = 1 + 2^-10.
        let a = F16::from_bits(0x3C01);
        let b = F16::from_bits(0x3C01);
        // Exact product = 1 + 2^-9 + 2^-20; rounds to 1 + 2^-9.
        let prod = a * b;
        assert_eq!(prod.to_bits(), 0x3C02);
        let acc = F16::from_f32(-1.0);
        let mac = a.mac(b, acc);
        // Two-step: (1 + 2^-9) - 1 = 2^-9 exactly.
        assert_eq!(mac.to_f32(), 2.0f32.powi(-9));
        // A fused MAC would give 2^-9 + 2^-20 rounded to 11 bits ≈ 0.001954...
        // which differs from 2^-9 = 0.001953125 in binary16? 2^-9 has exponent
        // -9; ULP is 2^-19; 2^-20 is half a ULP, ties-to-even keeps 2^-9.
        // Choose a sharper case instead: verify against explicit two-step.
        let explicit = (a * b) + acc;
        assert_eq!(mac.to_bits(), explicit.to_bits());
    }

    #[test]
    fn relu_is_a_sign_bit_mux() {
        assert_eq!(F16::from_f32(5.0).relu(), F16::from_f32(5.0));
        assert_eq!(F16::from_f32(-5.0).relu(), F16::ZERO);
        assert_eq!(F16::NEG_ZERO.relu().to_bits(), 0x0000);
        assert_eq!(F16::NEG_INFINITY.relu(), F16::ZERO);
        // Negative NaN goes through the mux to zero, like the silicon.
        let neg_nan = F16::from_bits(0xFE00);
        assert!(neg_nan.is_nan());
        assert_eq!(neg_nan.relu().to_bits(), 0x0000);
        // Positive NaN passes through unchanged.
        assert!(F16::NAN.relu().is_nan());
    }

    #[test]
    fn ordering_is_consistent() {
        let mut v: Vec<F16> =
            [-3.0f32, -0.5, 0.0, 0.25, 1.0, 1000.0].iter().map(|&x| F16::from_f32(x)).collect();
        let sorted = v.clone();
        v.reverse();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in v.iter().zip(sorted.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(F16::NEG_INFINITY < F16::MIN);
        assert!(F16::MAX < F16::INFINITY);
    }

    #[test]
    fn exhaustive_f32_roundtrip() {
        // Every one of the 65536 binary16 bit patterns must survive a
        // round-trip through f32 (NaNs stay NaN).
        for bits in 0u16..=u16::MAX {
            let h = F16::from_bits(bits);
            let rt = F16::from_f32(h.to_f32());
            if h.is_nan() {
                assert!(rt.is_nan(), "bits 0x{bits:04X}");
            } else {
                assert_eq!(rt.to_bits(), bits, "bits 0x{bits:04X}");
            }
        }
    }

    #[test]
    fn neg_flips_only_sign() {
        assert_eq!((-F16::ONE).to_bits(), 0xBC00);
        assert_eq!((-F16::NEG_ZERO).to_bits(), 0x0000);
        assert_eq!((-F16::INFINITY).to_bits(), 0xFC00);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert!(!format!("{}", F16::ONE).is_empty());
        assert!(format!("{:?}", F16::ONE).contains("0x3C00"));
    }
}
