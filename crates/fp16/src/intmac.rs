//! Integer MAC unit models: the Table I alternatives the paper evaluated
//! and rejected in favour of FP16.
//!
//! Table I compares INT16 (48-bit accumulator), INT8 (48- and 32-bit
//! accumulators), FP16, BFLOAT16 and FP32 MAC units. The paper keeps FP16
//! because the integer formats need per-tensor quantization ("INT8
//! operations have been widely used especially for inference") while FP16
//! "provides enough compute accuracy" natively. This module implements
//! the integer datapaths bit-exactly — including accumulator width and
//! saturation — so the accuracy trade-off behind Table I's area/energy
//! numbers can be *measured* (see the `quantization` binary).

/// Symmetric linear quantization parameters: `real = q × scale`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// The step size.
    pub scale: f32,
}

impl QuantParams {
    /// Chooses a scale covering `max_abs` with the given signed bit width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not 8 or 16, or `max_abs` is not positive-finite.
    pub fn fit(max_abs: f32, bits: u32) -> QuantParams {
        assert!(bits == 8 || bits == 16, "supported widths: 8, 16");
        assert!(max_abs.is_finite() && max_abs > 0.0, "max_abs must be positive");
        let qmax = ((1i32 << (bits - 1)) - 1) as f32;
        QuantParams { scale: max_abs / qmax }
    }

    /// Quantizes with round-to-nearest and saturation to the signed range.
    pub fn quantize(&self, v: f32, bits: u32) -> i32 {
        let qmax = (1i32 << (bits - 1)) - 1;
        let qmin = -qmax - 1;
        let q = (v / self.scale).round();
        (q as i64).clamp(qmin as i64, qmax as i64) as i32
    }

    /// Dequantizes an accumulator value given the product scale.
    pub fn dequantize_product(&self, other: &QuantParams, acc: i64) -> f32 {
        acc as f32 * self.scale * other.scale
    }
}

/// A signed integer multiply-accumulate unit with a bounded accumulator —
/// the Table I INT16/INT8 datapaths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntMac {
    /// Operand width (8 or 16).
    pub operand_bits: u32,
    /// Accumulator width (32 or 48).
    pub acc_bits: u32,
    acc: i64,
    /// Saturation events observed (narrow accumulators clip).
    saturations: u64,
}

impl IntMac {
    /// The Table I INT16 MAC with a 48-bit accumulator (the baseline row).
    pub fn int16_acc48() -> IntMac {
        IntMac { operand_bits: 16, acc_bits: 48, acc: 0, saturations: 0 }
    }

    /// The INT8 MAC with a 48-bit accumulator.
    pub fn int8_acc48() -> IntMac {
        IntMac { operand_bits: 8, acc_bits: 48, acc: 0, saturations: 0 }
    }

    /// The INT8 MAC with a 32-bit accumulator (smallest/cheapest row).
    pub fn int8_acc32() -> IntMac {
        IntMac { operand_bits: 8, acc_bits: 32, acc: 0, saturations: 0 }
    }

    fn clamp_operand(&self, v: i32) -> i64 {
        let max = (1i64 << (self.operand_bits - 1)) - 1;
        (v as i64).clamp(-max - 1, max)
    }

    /// One multiply-accumulate step with saturating accumulation.
    pub fn mac(&mut self, a: i32, b: i32) {
        let p = self.clamp_operand(a) * self.clamp_operand(b);
        let max = (1i64 << (self.acc_bits - 1)) - 1;
        let min = -max - 1;
        let sum = self.acc.saturating_add(p);
        if sum > max {
            self.acc = max;
            self.saturations += 1;
        } else if sum < min {
            self.acc = min;
            self.saturations += 1;
        } else {
            self.acc = sum;
        }
    }

    /// The accumulator value.
    pub fn accumulator(&self) -> i64 {
        self.acc
    }

    /// Saturation events so far.
    pub fn saturations(&self) -> u64 {
        self.saturations
    }

    /// Clears the accumulator (keeps the saturation counter).
    pub fn reset(&mut self) {
        self.acc = 0;
    }
}

/// Computes a dot product three ways — FP16 two-step-rounded (the shipped
/// datapath), INT16/48 and INT8/32 (the Table I alternatives) — and
/// returns each result's absolute error versus the f64 reference.
///
/// The quantized paths use per-vector symmetric scales fit to the data, the
/// standard inference recipe.
pub fn dot_product_errors(a: &[f32], b: &[f32]) -> DotErrors {
    assert_eq!(a.len(), b.len());
    let reference: f64 = a.iter().zip(b).map(|(&x, &y)| x as f64 * y as f64).sum();

    // FP16: two-step rounded MAC chain, like the PIM unit.
    let mut acc = crate::F16::ZERO;
    for (&x, &y) in a.iter().zip(b) {
        acc = crate::F16::from_f32(x).mac(crate::F16::from_f32(y), acc);
    }
    let fp16_err = (acc.to_f64() - reference).abs();

    let max_abs = |v: &[f32]| v.iter().fold(1e-12f32, |m, &x| m.max(x.abs()));
    let int_err = |bits: u32, mut mac: IntMac| -> (f64, u64) {
        let qa = QuantParams::fit(max_abs(a), bits);
        let qb = QuantParams::fit(max_abs(b), bits);
        for (&x, &y) in a.iter().zip(b) {
            mac.mac(qa.quantize(x, bits), qb.quantize(y, bits));
        }
        let v = qa.dequantize_product(&qb, mac.accumulator());
        ((v as f64 - reference).abs(), mac.saturations())
    };
    let (int16_err, int16_sat) = int_err(16, IntMac::int16_acc48());
    let (int8_err, int8_sat) = int_err(8, IntMac::int8_acc32());

    DotErrors {
        reference,
        fp16_err,
        int16_err,
        int8_err,
        int16_saturations: int16_sat,
        int8_saturations: int8_sat,
    }
}

/// The result of [`dot_product_errors`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DotErrors {
    /// f64 reference value.
    pub reference: f64,
    /// |FP16 result − reference|.
    pub fp16_err: f64,
    /// |INT16/48 result − reference|.
    pub int16_err: f64,
    /// |INT8/32 result − reference|.
    pub int8_err: f64,
    /// INT16 accumulator saturations.
    pub int16_saturations: u64,
    /// INT8 accumulator saturations.
    pub int8_saturations: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_roundtrip_is_tight() {
        let q = QuantParams::fit(4.0, 8);
        let v = q.quantize(3.0, 8);
        assert!((v as f32 * q.scale - 3.0).abs() <= q.scale / 2.0);
        // Saturation at the edges.
        assert_eq!(q.quantize(100.0, 8), 127);
        assert_eq!(q.quantize(-100.0, 8), -128);
    }

    #[test]
    fn int_mac_accumulates_exactly() {
        let mut m = IntMac::int16_acc48();
        for _ in 0..1000 {
            m.mac(30000, 30000);
        }
        assert_eq!(m.accumulator(), 1000i64 * 30000 * 30000);
        assert_eq!(m.saturations(), 0);
    }

    #[test]
    fn narrow_accumulator_saturates() {
        // INT8/32: 127×127 ≈ 2^14; ~2^17 such products overflow 2^31.
        let mut m = IntMac::int8_acc32();
        for _ in 0..200_000 {
            m.mac(127, 127);
        }
        assert!(m.saturations() > 0, "32-bit accumulator must clip");
        assert_eq!(m.accumulator(), (1i64 << 31) - 1);
    }

    #[test]
    fn operands_clamped_to_width() {
        let mut m = IntMac::int8_acc48();
        m.mac(1000, 1); // clamps to 127
        assert_eq!(m.accumulator(), 127);
    }

    #[test]
    fn fp16_accuracy_beats_int8_on_wide_dynamic_range() {
        // Mixed magnitudes: quantization noise hits INT8 hard, FP16's
        // per-value exponent shrugs it off — Table I's accuracy rationale.
        let a: Vec<f32> = (0..256).map(|i| if i % 16 == 0 { 8.0 } else { 0.01 }).collect();
        let b: Vec<f32> = (0..256).map(|i| if i % 16 == 1 { -8.0 } else { 0.01 }).collect();
        let e = dot_product_errors(&a, &b);
        let rel = |err: f64| err / e.reference.abs().max(1e-9);
        assert!(rel(e.fp16_err) < 0.05, "fp16 rel err {}", rel(e.fp16_err));
        assert!(
            e.int8_err > e.fp16_err * 5.0,
            "int8 {} should be much worse than fp16 {}",
            e.int8_err,
            e.fp16_err
        );
    }

    #[test]
    fn int16_is_competitive_on_uniform_data() {
        // Uniform, well-scaled data is where INT16 shines — which is why
        // Table I uses it as the baseline.
        let a: Vec<f32> = (0..512).map(|i| ((i % 41) as f32 - 20.0) / 20.0).collect();
        let b: Vec<f32> = (0..512).map(|i| ((i % 37) as f32 - 18.0) / 18.0).collect();
        let e = dot_product_errors(&a, &b);
        assert!(e.int16_err < 0.05 * e.reference.abs().max(1.0));
        assert_eq!(e.int16_saturations, 0);
    }
}
