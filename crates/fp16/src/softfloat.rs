//! Pure bit-level binary16 arithmetic — no host floating point involved.
//!
//! [`crate::F16`]'s operators compute through `f32` and rely on the
//! double-rounding theorem (see the crate docs). This module implements
//! multiplication and addition directly on the bit patterns, the way the
//! PIM unit's FPU actually does it in silicon, and the test suite
//! cross-checks the two implementations over exhaustive single-operand
//! sweeps and large random samples. Two independent derivations agreeing
//! bit-for-bit is the strongest evidence either is right.

const EXP_MASK: u16 = 0x7C00;
const FRAC_MASK: u16 = 0x03FF;
const SIGN_MASK: u16 = 0x8000;
const QNAN: u16 = 0x7E00;

#[inline]
fn is_nan(bits: u16) -> bool {
    (bits & EXP_MASK) == EXP_MASK && (bits & FRAC_MASK) != 0
}

#[inline]
fn is_inf(bits: u16) -> bool {
    (bits & EXP_MASK) == EXP_MASK && (bits & FRAC_MASK) == 0
}

#[inline]
fn is_zero(bits: u16) -> bool {
    (bits & !SIGN_MASK) == 0
}

/// Decomposes finite nonzero bits into (unbiased exponent of the implicit
/// point, 11-bit significand with the leading one at bit 10).
/// Value = sig × 2^(e − 10).
fn decompose(bits: u16) -> (i32, u32) {
    let exp = ((bits & EXP_MASK) >> 10) as i32;
    let frac = (bits & FRAC_MASK) as u32;
    if exp == 0 {
        // Subnormal: value = frac × 2^-24 = frac × 2^(-14 - 10).
        // Normalize so bit 10 is the leading one.
        let shift = frac.leading_zeros() - 21; // 10 - msb_position
        (-14 - shift as i32, frac << shift)
    } else {
        (exp - 15, 0x400 | frac)
    }
}

/// Packs (sign, unbiased exponent, 11-bit significand `0x400..0x800`,
/// round, sticky) into bits with round-to-nearest-even, handling overflow
/// to infinity and underflow through the subnormal range.
fn pack(sign: u16, e: i32, mut sig: u32, mut round: bool, mut sticky: bool) -> u16 {
    debug_assert!(sig == 0 || (0x400..0x800).contains(&sig));
    if sig == 0 {
        return sign; // signed zero (exact)
    }
    // Biased exponent for a normal result.
    let be = e + 15;
    if be <= 0 {
        // Denormalize: shift right 1 - be positions, folding into
        // round/sticky.
        let shift = (1 - be) as u32;
        if shift > 12 {
            // Entirely below the rounding horizon: only sticky survives.
            sticky |= sig != 0 || round;
            round = false;
            sig = 0;
        } else {
            for _ in 0..shift {
                sticky |= round;
                round = sig & 1 == 1;
                sig >>= 1;
            }
        }
        let mut out = sig as u16;
        if round && (sticky || out & 1 == 1) {
            out += 1; // may carry into the exponent: correct (min normal)
        }
        return sign | out;
    }
    if be >= 31 {
        return sign | EXP_MASK; // overflow → infinity
    }
    let mut out = ((be as u16) << 10) | (sig as u16 & FRAC_MASK);
    if round && (sticky || out & 1 == 1) {
        out += 1; // fraction carry rolls into exponent; 0x7C00 == +inf. ✔
    }
    sign | out
}

/// Bit-level binary16 multiplication with round-to-nearest-even.
///
/// ```
/// use pim_fp16::softfloat::mul_bits;
/// use pim_fp16::F16;
/// let a = F16::from_f32(1.5).to_bits();
/// let b = F16::from_f32(-2.0).to_bits();
/// assert_eq!(F16::from_bits(mul_bits(a, b)).to_f32(), -3.0);
/// ```
pub fn mul_bits(a: u16, b: u16) -> u16 {
    let sign = (a ^ b) & SIGN_MASK;
    if is_nan(a) || is_nan(b) {
        return QNAN;
    }
    if is_inf(a) || is_inf(b) {
        if is_zero(a) || is_zero(b) {
            return QNAN; // inf × 0
        }
        return sign | EXP_MASK;
    }
    if is_zero(a) || is_zero(b) {
        return sign;
    }
    let (ea, sa) = decompose(a);
    let (eb, sb) = decompose(b);
    // 11 × 11 → 22-bit product; leading one at bit 21 or 20.
    let p = sa * sb;
    let (e, sig, rest_mask, rest_shift) = if p & (1 << 21) != 0 {
        (ea + eb + 1, p >> 11, (1u32 << 11) - 1, 11u32)
    } else {
        (ea + eb, p >> 10, (1u32 << 10) - 1, 10u32)
    };
    let rest = p & rest_mask;
    let half = 1u32 << (rest_shift - 1);
    let round = rest & half != 0;
    let sticky = rest & (half - 1) != 0;
    pack(sign, e, sig, round, sticky)
}

/// Bit-level binary16 addition with round-to-nearest-even.
///
/// ```
/// use pim_fp16::softfloat::add_bits;
/// use pim_fp16::F16;
/// let a = F16::from_f32(0.1).to_bits();
/// let b = F16::from_f32(0.2).to_bits();
/// let reference = (F16::from_f32(0.1) + F16::from_f32(0.2)).to_bits();
/// assert_eq!(add_bits(a, b), reference);
/// ```
pub fn add_bits(a: u16, b: u16) -> u16 {
    if is_nan(a) || is_nan(b) {
        return QNAN;
    }
    match (is_inf(a), is_inf(b)) {
        (true, true) => {
            return if (a ^ b) & SIGN_MASK != 0 { QNAN } else { a };
        }
        (true, false) => return a,
        (false, true) => return b,
        _ => {}
    }
    if is_zero(a) && is_zero(b) {
        // +0 + -0 = +0 (RNE); equal signs keep the sign.
        return if a == b { a } else { 0 };
    }
    if is_zero(a) {
        return b;
    }
    if is_zero(b) {
        return a;
    }

    let (ea, sa) = decompose(a);
    let (eb, sb) = decompose(b);
    let (sign_a, sign_b) = (a & SIGN_MASK, b & SIGN_MASK);

    // Order so |x| >= |y| (compare by exponent then significand).
    let swap = (ea, sa) < (eb, sb);
    let (ex, sx, sgx) = if swap { (eb, sb, sign_b) } else { (ea, sa, sign_a) };
    let (ey, sy, sgy) = if swap { (ea, sa, sign_a) } else { (eb, sb, sign_b) };

    // Work in fixed point with 3 extra bits (guard/round/sticky).
    let mut x = (sx as u64) << 3;
    let mut y = (sy as u64) << 3;
    let diff = (ex - ey) as u32;
    if diff >= 40 {
        // y vanishes entirely into sticky.
        y = 1; // sticky bit only
    } else {
        let shifted_out = if diff == 0 { 0 } else { y & ((1u64 << diff) - 1) };
        y >>= diff;
        if shifted_out != 0 {
            y |= 1; // sticky
        }
    }
    let _ = &mut x;

    if sgx == sgy {
        // Magnitude addition.
        let mut sum = x + y;
        let mut e = ex;
        if sum & (1 << 14) != 0 {
            // Carried past bit 13 (sig bit 10 <<3): renormalize.
            let sticky = sum & 1;
            sum = (sum >> 1) | sticky;
            e += 1;
        }
        let sig = (sum >> 3) as u32;
        let round = sum & 0b100 != 0;
        let sticky = sum & 0b011 != 0;
        pack(sgx, e, sig, round, sticky)
    } else {
        // Magnitude subtraction: x >= y.
        let mut dif = x - y;
        if dif == 0 {
            return 0; // exact cancellation → +0
        }
        let mut e = ex;
        // Renormalize: leading one to bit 13.
        while dif & (1 << 13) == 0 {
            dif <<= 1;
            e -= 1;
        }
        let sig = (dif >> 3) as u32;
        let round = dif & 0b100 != 0;
        let sticky = dif & 0b011 != 0;
        pack(sgx, e, sig, round, sticky)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::F16;

    fn ref_mul(a: u16, b: u16) -> u16 {
        (F16::from_bits(a) * F16::from_bits(b)).to_bits()
    }

    fn ref_add(a: u16, b: u16) -> u16 {
        (F16::from_bits(a) + F16::from_bits(b)).to_bits()
    }

    fn agree(got: u16, want: u16) -> bool {
        if is_nan(want) {
            is_nan(got)
        } else {
            got == want
        }
    }

    /// Exhaustive sweep of every bit pattern against a set of anchors.
    #[test]
    fn exhaustive_single_operand_sweeps() {
        let anchors = [
            0x0000u16, 0x8000, 0x3C00, 0xBC00, 0x0001, 0x8001, 0x03FF, 0x0400, 0x7BFF, 0xFBFF,
            0x7C00, 0xFC00, 0x7E00, 0x3555, 0xB555, 0x5640, 0x2E66,
        ];
        for bits in 0u16..=u16::MAX {
            for &anchor in &anchors {
                let m = mul_bits(bits, anchor);
                assert!(
                    agree(m, ref_mul(bits, anchor)),
                    "mul {bits:#06x} x {anchor:#06x}: got {m:#06x}, want {:#06x}",
                    ref_mul(bits, anchor)
                );
                let s = add_bits(bits, anchor);
                assert!(
                    agree(s, ref_add(bits, anchor)),
                    "add {bits:#06x} + {anchor:#06x}: got {s:#06x}, want {:#06x}",
                    ref_add(bits, anchor)
                );
            }
        }
    }

    /// A large pseudo-random pair sample (deterministic LCG).
    #[test]
    fn random_pair_sample() {
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..2_000_000 {
            let r = next();
            let a = (r & 0xFFFF) as u16;
            let b = (r >> 16) as u16;
            assert!(agree(mul_bits(a, b), ref_mul(a, b)), "mul {a:#06x} x {b:#06x}");
            assert!(agree(add_bits(a, b), ref_add(a, b)), "add {a:#06x} + {b:#06x}");
        }
    }

    #[test]
    fn special_cases() {
        // inf × 0 and inf − inf are NaN.
        assert!(is_nan(mul_bits(0x7C00, 0x0000)));
        assert!(is_nan(add_bits(0x7C00, 0xFC00)));
        // -0 + +0 = +0; -0 + -0 = -0.
        assert_eq!(add_bits(0x8000, 0x0000), 0x0000);
        assert_eq!(add_bits(0x8000, 0x8000), 0x8000);
        // Exact cancellation is +0.
        let x = 0x4D42u16;
        assert_eq!(add_bits(x, x ^ SIGN_MASK), 0x0000);
        // Overflow rounds to infinity.
        assert_eq!(mul_bits(0x7BFF, 0x7BFF), 0x7C00);
        assert_eq!(add_bits(0x7BFF, 0x7BFF), 0x7C00);
    }
}
