//! bfloat16: the format the paper evaluates in Table I and rejects in favour
//! of FP16 (Section III-C) because FP16 is natively supported by host
//! processors and legacy libraries.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A bfloat16 floating-point number: 1 sign bit, 8 exponent bits (bias 127),
/// 7 fraction bits — the top half of an `f32` bit pattern.
///
/// The paper's Table I measures a BFLOAT16 MAC at 1.15× the area and 1.04×
/// the energy of the INT16 baseline (slightly cheaper than FP16's 1.32×/
/// 1.21×) but the product ships FP16. We implement bfloat16 anyway so the
/// Table I reproduction and the ablation benches can exercise it.
///
/// # Example
///
/// ```
/// use pim_fp16::Bf16;
///
/// let x = Bf16::from_f32(3.0);
/// assert_eq!((x * Bf16::from_f32(2.0)).to_f32(), 6.0);
/// // bfloat16 keeps FP32's dynamic range:
/// assert!(Bf16::from_f32(1e38).is_finite());
/// ```
#[derive(Clone, Copy, Default)]
pub struct Bf16(u16);

const EXP_MASK: u16 = 0x7F80;
const FRAC_MASK: u16 = 0x007F;
const SIGN_MASK: u16 = 0x8000;

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0x0000);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Positive infinity.
    pub const INFINITY: Bf16 = Bf16(0x7F80);
    /// Negative infinity.
    pub const NEG_INFINITY: Bf16 = Bf16(0xFF80);
    /// A quiet NaN.
    pub const NAN: Bf16 = Bf16(0x7FC0);
    /// Largest finite value (`0x7F7F` ≈ 3.39e38).
    pub const MAX: Bf16 = Bf16(0x7F7F);

    /// Creates a value from its raw bfloat16 bit pattern.
    #[inline]
    pub const fn from_bits(bits: u16) -> Bf16 {
        Bf16(bits)
    }

    /// Returns the raw bit pattern.
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to bfloat16 with round-to-nearest-even.
    ///
    /// bfloat16 is the upper 16 bits of binary32, so the conversion is a
    /// single rounding of the low 16 bits. The paper notes this "simple
    /// conversion from FP32" as bfloat16's design rationale.
    pub fn from_f32(value: f32) -> Bf16 {
        let bits = value.to_bits();
        if value.is_nan() {
            // Keep quiet; preserve sign and top payload bit.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x0000_7FFF + lsb);
        // Overflow of the rounding add carries into the exponent and, at the
        // very top, into infinity — both are the correct RNE results.
        Bf16((rounded >> 16) as u16)
    }

    /// Converts to `f32` (exact: appends 16 zero bits).
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// `true` if NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & FRAC_MASK) != 0
    }

    /// `true` if positive or negative infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & FRAC_MASK) == 0
    }

    /// `true` if neither infinite nor NaN.
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// `true` if positive or negative zero.
    pub fn is_zero(self) -> bool {
        (self.0 & !SIGN_MASK) == 0
    }

    /// `true` if the sign bit is set.
    pub fn is_sign_negative(self) -> bool {
        (self.0 & SIGN_MASK) != 0
    }

    /// ReLU as a sign-bit mux, mirroring [`crate::F16::relu`].
    pub fn relu(self) -> Bf16 {
        if self.is_sign_negative() {
            Bf16::ZERO
        } else {
            self
        }
    }

    /// Two-step rounded MAC, mirroring [`crate::F16::mac`].
    pub fn mac(self, b: Bf16, acc: Bf16) -> Bf16 {
        (self * b) + acc
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bf16({} /* 0x{:04X} */)", self.to_f32(), self.0)
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl PartialEq for Bf16 {
    fn eq(&self, other: &Bf16) -> bool {
        if self.is_nan() || other.is_nan() {
            return false;
        }
        if self.is_zero() && other.is_zero() {
            return true;
        }
        self.0 == other.0
    }
}

impl PartialOrd for Bf16 {
    fn partial_cmp(&self, other: &Bf16) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl From<f32> for Bf16 {
    fn from(v: f32) -> Bf16 {
        Bf16::from_f32(v)
    }
}

impl From<Bf16> for f32 {
    fn from(v: Bf16) -> f32 {
        v.to_f32()
    }
}

impl Neg for Bf16 {
    type Output = Bf16;
    fn neg(self) -> Bf16 {
        Bf16(self.0 ^ SIGN_MASK)
    }
}

impl Add for Bf16 {
    type Output = Bf16;
    fn add(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl Sub for Bf16 {
    type Output = Bf16;
    fn sub(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl Mul for Bf16 {
    type Output = Bf16;
    fn mul(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl Div for Bf16 {
    type Output = Bf16;
    fn div(self, rhs: Bf16) -> Bf16 {
        Bf16::from_f32(self.to_f32() / rhs.to_f32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_upper_half_of_f32() {
        let x = 1.5f32;
        assert_eq!(Bf16::from_f32(x).to_bits(), (x.to_bits() >> 16) as u16);
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
    }

    #[test]
    fn rounding_ties_to_even() {
        // 1.0 + 2^-8 is exactly the midpoint between 1.0 (even) and 1.0+2^-7.
        let mid = f32::from_bits(0x3F80_8000);
        assert_eq!(Bf16::from_f32(mid).to_bits(), 0x3F80);
        // One bit above the midpoint rounds up.
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(Bf16::from_f32(above).to_bits(), 0x3F81);
        // Midpoint above an odd value rounds up to even.
        let mid_odd = f32::from_bits(0x3F81_8000);
        assert_eq!(Bf16::from_f32(mid_odd).to_bits(), 0x3F82);
    }

    #[test]
    fn preserves_f32_dynamic_range() {
        assert!(Bf16::from_f32(1e38).is_finite());
        assert!(Bf16::from_f32(1e-38).to_f32() > 0.0);
        // FP16 would overflow at the same magnitude.
        assert!(crate::F16::from_f32(1e38).is_infinite());
    }

    #[test]
    fn overflow_rounds_to_infinity() {
        assert_eq!(Bf16::from_f32(f32::MAX), Bf16::INFINITY);
        assert_eq!(Bf16::from_f32(-f32::MAX), Bf16::NEG_INFINITY);
        assert_eq!(Bf16::MAX.to_f32(), f32::from_bits(0x7F7F_0000));
    }

    #[test]
    fn nan_stays_nan() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert!(Bf16::NAN.is_nan());
        assert!((Bf16::NAN + Bf16::ONE).is_nan());
        assert!(Bf16::NAN != Bf16::NAN);
    }

    #[test]
    fn relu_mux() {
        assert_eq!(Bf16::from_f32(-2.0).relu(), Bf16::ZERO);
        assert_eq!(Bf16::from_f32(2.0).relu(), Bf16::from_f32(2.0));
    }

    #[test]
    fn mac_two_step() {
        let r = Bf16::from_f32(2.0).mac(Bf16::from_f32(3.0), Bf16::ONE);
        assert_eq!(r.to_f32(), 7.0);
    }

    #[test]
    fn exhaustive_roundtrip() {
        for bits in 0u16..=u16::MAX {
            let b = Bf16::from_bits(bits);
            let rt = Bf16::from_f32(b.to_f32());
            if b.is_nan() {
                assert!(rt.is_nan());
            } else {
                assert_eq!(rt.to_bits(), bits, "bits 0x{bits:04X}");
            }
        }
    }
}
