//! Property-based tests for the softfloat implementations.
//!
//! These pin down the IEEE-754 semantics the PIM datapath depends on by
//! comparing against the host's native `f32`/`f64` arithmetic over random
//! inputs, including exhaustive sweeps of the 16-bit space where cheap.

use pim_fp16::{Bf16, F16};
use proptest::prelude::*;

/// An arbitrary finite F16 via a random bit pattern with a non-max exponent.
fn finite_f16() -> impl Strategy<Value = F16> {
    any::<u16>().prop_map(F16::from_bits).prop_filter("finite", |x| x.is_finite())
}

fn finite_bf16() -> impl Strategy<Value = Bf16> {
    any::<u16>().prop_map(Bf16::from_bits).prop_filter("finite", |x| x.is_finite())
}

proptest! {
    /// from_f32 must agree with the reference "cast via f64 comparison":
    /// the produced value is one of the two binary16 neighbours of the input,
    /// and of those two it is the closer one (ties broken to even).
    #[test]
    fn from_f32_is_nearest(x in -70000.0f32..70000.0) {
        let h = F16::from_f32(x);
        prop_assume!(h.is_finite());
        let v = h.to_f64();
        let err = (v - x as f64).abs();
        // Any neighbouring representable value must not be closer.
        let bits = h.to_bits();
        for nb in [bits.wrapping_sub(1), bits.wrapping_add(1)] {
            let n = F16::from_bits(nb);
            if n.is_finite() {
                let nerr = (n.to_f64() - x as f64).abs();
                prop_assert!(err <= nerr + f64::EPSILON,
                    "{x} -> {v} (err {err}) but neighbour {} closer (err {nerr})", n.to_f64());
            }
        }
    }

    /// Addition is commutative on non-NaN values.
    #[test]
    fn add_commutes(a in finite_f16(), b in finite_f16()) {
        let ab = a + b;
        let ba = b + a;
        if !ab.is_nan() {
            prop_assert_eq!(ab.to_bits(), ba.to_bits());
        }
    }

    /// Multiplication is commutative on non-NaN values.
    #[test]
    fn mul_commutes(a in finite_f16(), b in finite_f16()) {
        let ab = a * b;
        if !ab.is_nan() {
            prop_assert_eq!(ab.to_bits(), (b * a).to_bits());
        }
    }

    /// x + 0 == x for finite x (sign of zero per IEEE: +0 is the identity).
    #[test]
    fn additive_identity(a in finite_f16()) {
        prop_assert_eq!((a + F16::ZERO).to_f32(), a.to_f32());
    }

    /// x * 1 == x exactly for finite x.
    #[test]
    fn multiplicative_identity(a in finite_f16()) {
        prop_assert_eq!((a * F16::ONE).to_bits(), a.to_bits());
    }

    /// x - x == +0 for finite x (round-to-nearest mode).
    #[test]
    fn self_subtraction_is_zero(a in finite_f16()) {
        prop_assert!((a - a).is_zero());
    }

    /// MAC equals explicit two-step computation.
    #[test]
    fn mac_is_two_step(a in finite_f16(), b in finite_f16(), c in finite_f16()) {
        let mac = a.mac(b, c);
        let explicit = (a * b) + c;
        if mac.is_nan() {
            prop_assert!(explicit.is_nan());
        } else {
            prop_assert_eq!(mac.to_bits(), explicit.to_bits());
        }
    }

    /// ReLU output is never negative-signed and is idempotent.
    #[test]
    fn relu_properties(a in any::<u16>().prop_map(F16::from_bits)) {
        let r = a.relu();
        prop_assert!(!r.is_sign_negative());
        prop_assert_eq!(r.relu().to_bits(), r.to_bits());
    }

    /// Rounding is monotone: x <= y implies round(x) <= round(y).
    #[test]
    fn rounding_is_monotone(x in -70000.0f32..70000.0, y in -70000.0f32..70000.0) {
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        let rl = F16::from_f32(lo);
        let rh = F16::from_f32(hi);
        prop_assert!(rl <= rh, "round({lo})={rl:?} > round({hi})={rh:?}");
    }

    /// bfloat16 conversion equals truncation-with-RNE of the f32 pattern.
    #[test]
    fn bf16_matches_f32_upper_half(x in -1.0e38f32..1.0e38) {
        let b = Bf16::from_f32(x);
        prop_assume!(b.is_finite());
        // Error is bounded by half a bf16 ULP of x.
        let ulp = 2.0f64.powi((x.abs().log2().floor() as i32) - 7);
        let err = (b.to_f32() as f64 - x as f64).abs();
        prop_assert!(err <= ulp * 0.5 + f64::EPSILON, "x={x} b={} err={err} ulp={ulp}", b.to_f32());
    }

    /// bf16 add commutes.
    #[test]
    fn bf16_add_commutes(a in finite_bf16(), b in finite_bf16()) {
        let ab = a + b;
        if !ab.is_nan() {
            prop_assert_eq!(ab.to_bits(), (b + a).to_bits());
        }
    }
}

/// Exhaustive: negation is an involution over every bit pattern.
#[test]
fn negation_involution_exhaustive() {
    for bits in 0u16..=u16::MAX {
        let x = F16::from_bits(bits);
        assert_eq!((-(-x)).to_bits(), bits);
    }
}

/// Exhaustive: abs clears exactly the sign bit.
#[test]
fn abs_exhaustive() {
    for bits in 0u16..=u16::MAX {
        let x = F16::from_bits(bits);
        assert_eq!(x.abs().to_bits(), bits & 0x7FFF);
    }
}

/// Exhaustive single-operand sweep: doubling any finite value matches the
/// f32 reference rounded back to binary16.
#[test]
fn doubling_matches_reference_exhaustive() {
    let two = F16::from_f32(2.0);
    for bits in 0u16..=u16::MAX {
        let x = F16::from_bits(bits);
        if !x.is_finite() {
            continue;
        }
        let got = x * two;
        let want = F16::from_f32(x.to_f32() * 2.0);
        if got.is_nan() {
            assert!(want.is_nan());
        } else {
            assert_eq!(got.to_bits(), want.to_bits(), "bits 0x{bits:04X}");
        }
    }
}
