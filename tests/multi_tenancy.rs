//! Multi-tenancy & virtualization (Section VIII): "PIM-HBM can support
//! virtualization and multi-tenancy at some degrees since it allows a
//! processor to independently control PIM operations of each memory
//! channel." Two tenants run *different* PIM kernels concurrently on
//! disjoint channel subsets; results and timing must match each tenant
//! running alone.

use pim_core::isa::Instruction;
use pim_core::LaneVec;
use pim_dram::Cycle;
use pim_host::{Batch, ExecutionMode, KernelEngine};
use pim_runtime::kernels::{stream_batches, stream_microkernel};
use pim_runtime::{Executor, PimContext, StreamOp};

/// Builds the full choreography for a 1-row stream kernel.
fn kernel(op: StreamOp, ctx: &PimContext) -> Vec<Batch> {
    let cfg = ctx.sys.pim_config().clone();
    let program: Vec<Instruction> = stream_microkernel(op, 1, &cfg);
    let data = stream_batches(op, 1, 0, &cfg);
    Executor::full_kernel(&program, None, false, &data)
}

/// Seeds channel `ch`'s even banks with per-unit data at row 0.
fn seed(ctx: &mut PimContext, ch: usize, value: f32) {
    for u in 0..8 {
        for col in 0..16 {
            let v = LaneVec::from_f32([value + u as f32; 16]);
            pim_runtime::layout::store_block(&mut ctx.sys, ch, u, 0, col, &v);
        }
    }
}

#[test]
fn disjoint_tenants_do_not_interfere() {
    let mode = ExecutionMode::Fenced { reorder_seed: None };

    // Tenant A: ReLU kernel on channels 0..8. Tenant B: ADD on 8..16.
    let run_together = || -> (Vec<f32>, Vec<f32>, Cycle) {
        let mut ctx = PimContext::small_system();
        for ch in 0..8 {
            seed(&mut ctx, ch, -3.0);
        }
        for ch in 8..16 {
            seed(&mut ctx, ch, 5.0);
        }
        let ka = kernel(StreamOp::Relu, &ctx);
        let kb = kernel(StreamOp::Add, &ctx);
        let host = ctx.sys.host.clone();
        // Interleave the two tenants' kernels channel by channel — each
        // channel has its own controller and clock, so they genuinely run
        // concurrently.
        for ch in 0..8 {
            KernelEngine::run_on_channel(&host, ctx.sys.channel_mut(ch), &ka, mode);
        }
        for ch in 8..16 {
            KernelEngine::run_on_channel(&host, ctx.sys.channel_mut(ch), &kb, mode);
        }
        let end = ctx.sys.max_now();
        let a = read_back(&ctx, 0, StreamOp::Relu);
        let b = read_back(&ctx, 8, StreamOp::Add);
        (a, b, end)
    };

    let run_alone = |op: StreamOp, ch: usize, value: f32| -> (Vec<f32>, Cycle) {
        let mut ctx = PimContext::small_system();
        seed(&mut ctx, ch, value);
        let k = kernel(op, &ctx);
        let host = ctx.sys.host.clone();
        let r = KernelEngine::run_on_channel(&host, ctx.sys.channel_mut(ch), &k, mode);
        (read_back(&ctx, ch, op), r.end_cycle)
    };

    let (a_together, b_together, _) = run_together();
    let (a_alone, t_a) = run_alone(StreamOp::Relu, 0, -3.0);
    let (b_alone, t_b) = run_alone(StreamOp::Add, 8, 5.0);

    assert_eq!(a_together, a_alone, "tenant A's results unchanged by tenant B");
    assert_eq!(b_together, b_alone, "tenant B's results unchanged by tenant A");

    // And tenant isolation extends to timing: running together costs each
    // tenant nothing (channels are independent).
    let mut ctx = PimContext::small_system();
    seed(&mut ctx, 0, -3.0);
    seed(&mut ctx, 8, 5.0);
    let ka = kernel(StreamOp::Relu, &ctx);
    let kb = kernel(StreamOp::Add, &ctx);
    let host = ctx.sys.host.clone();
    let ra = KernelEngine::run_on_channel(&host, ctx.sys.channel_mut(0), &ka, mode);
    let rb = KernelEngine::run_on_channel(&host, ctx.sys.channel_mut(8), &kb, mode);
    assert_eq!(ra.end_cycle, t_a, "tenant A timing unchanged");
    assert_eq!(rb.end_cycle, t_b, "tenant B timing unchanged");
}

/// Reads the kernel's output region (unit 0, row 0) back as f32.
fn read_back(ctx: &PimContext, ch: usize, op: StreamOp) -> Vec<f32> {
    let cfg = ctx.sys.pim_config().clone();
    let (_, _, z_col) = pim_runtime::kernels::stream_columns(op, &cfg);
    let mut out = Vec::new();
    for u in 0..8 {
        for c in 0..8 {
            let v: LaneVec = pim_runtime::layout::load_block(&ctx.sys, ch, u, 0, z_col + c);
            out.extend(v.to_f32());
        }
    }
    out
}
