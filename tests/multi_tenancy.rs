//! Multi-tenancy & virtualization (Section VIII): "PIM-HBM can support
//! virtualization and multi-tenancy at some degrees since it allows a
//! processor to independently control PIM operations of each memory
//! channel." Two tenants run *different* PIM kernels concurrently on
//! disjoint channel subsets; results and timing must match each tenant
//! running alone.

use pim_core::isa::Instruction;
use pim_core::LaneVec;
use pim_dram::Cycle;
use pim_host::{Batch, ExecutionMode, KernelEngine};
use pim_runtime::kernels::{stream_batches, stream_microkernel};
use pim_runtime::{Executor, PimContext, StreamOp};

/// Builds the full choreography for a 1-row stream kernel.
fn kernel(op: StreamOp, ctx: &PimContext) -> Vec<Batch> {
    let cfg = ctx.sys.pim_config().clone();
    let program: Vec<Instruction> = stream_microkernel(op, 1, &cfg);
    let data = stream_batches(op, 1, 0, &cfg);
    Executor::full_kernel(&program, None, false, &data)
}

/// Seeds channel `ch`'s even banks with per-unit data at row 0.
fn seed(ctx: &mut PimContext, ch: usize, value: f32) {
    for u in 0..8 {
        for col in 0..16 {
            let v = LaneVec::from_f32([value + u as f32; 16]);
            pim_runtime::layout::store_block(&mut ctx.sys, ch, u, 0, col, &v);
        }
    }
}

#[test]
fn disjoint_tenants_do_not_interfere() {
    let mode = ExecutionMode::Fenced { reorder_seed: None };

    // Tenant A: ReLU kernel on channels 0..8. Tenant B: ADD on 8..16.
    let run_together = || -> (Vec<f32>, Vec<f32>, Cycle) {
        let mut ctx = PimContext::small_system();
        for ch in 0..8 {
            seed(&mut ctx, ch, -3.0);
        }
        for ch in 8..16 {
            seed(&mut ctx, ch, 5.0);
        }
        let ka = kernel(StreamOp::Relu, &ctx);
        let kb = kernel(StreamOp::Add, &ctx);
        let host = ctx.sys.host.clone();
        // Interleave the two tenants' kernels channel by channel — each
        // channel has its own controller and clock, so they genuinely run
        // concurrently.
        for ch in 0..8 {
            KernelEngine::run_on_channel(&host, ctx.sys.channel_mut(ch), &ka, mode);
        }
        for ch in 8..16 {
            KernelEngine::run_on_channel(&host, ctx.sys.channel_mut(ch), &kb, mode);
        }
        let end = ctx.sys.max_now();
        let a = read_back(&ctx, 0, StreamOp::Relu);
        let b = read_back(&ctx, 8, StreamOp::Add);
        (a, b, end)
    };

    let run_alone = |op: StreamOp, ch: usize, value: f32| -> (Vec<f32>, Cycle) {
        let mut ctx = PimContext::small_system();
        seed(&mut ctx, ch, value);
        let k = kernel(op, &ctx);
        let host = ctx.sys.host.clone();
        let r = KernelEngine::run_on_channel(&host, ctx.sys.channel_mut(ch), &k, mode);
        (read_back(&ctx, ch, op), r.end_cycle)
    };

    let (a_together, b_together, _) = run_together();
    let (a_alone, t_a) = run_alone(StreamOp::Relu, 0, -3.0);
    let (b_alone, t_b) = run_alone(StreamOp::Add, 8, 5.0);

    assert_eq!(a_together, a_alone, "tenant A's results unchanged by tenant B");
    assert_eq!(b_together, b_alone, "tenant B's results unchanged by tenant A");

    // And tenant isolation extends to timing: running together costs each
    // tenant nothing (channels are independent).
    let mut ctx = PimContext::small_system();
    seed(&mut ctx, 0, -3.0);
    seed(&mut ctx, 8, 5.0);
    let ka = kernel(StreamOp::Relu, &ctx);
    let kb = kernel(StreamOp::Add, &ctx);
    let host = ctx.sys.host.clone();
    let ra = KernelEngine::run_on_channel(&host, ctx.sys.channel_mut(0), &ka, mode);
    let rb = KernelEngine::run_on_channel(&host, ctx.sys.channel_mut(8), &kb, mode);
    assert_eq!(ra.end_cycle, t_a, "tenant A timing unchanged");
    assert_eq!(rb.end_cycle, t_b, "tenant B timing unchanged");
}

/// Contention through the serving layer: two tenants pin their requests to
/// the *same* channel group, arriving at the same cycle. The scheduler must
/// serialize them deterministically (seeded tie-break) — both complete,
/// both results are bit-exact, and neither leaks onto the other group's
/// channels.
#[test]
fn contending_tenants_serialize_deterministically_through_server() {
    use pim_fp16::F16;
    use pim_runtime::{Disposition, ServeConfig, ServeOp, ServeRequest, Server};

    let n = 768usize;
    let make = |tenant: u32, salt: f32| ServeRequest {
        tenant,
        arrival: 0,
        deadline: 60_000_000,
        groups: Some(vec![1]), // both tenants demand channels 4..8
        budget: None,
        op: ServeOp::Add {
            x: (0..n).map(|i| (i % 37) as f32 * 0.5 - 9.0 + salt).collect(),
            y: (0..n).map(|i| (i % 23) as f32 * 0.25 - 2.0).collect(),
        },
    };
    let oracle = |req: &ServeRequest| -> Vec<f32> {
        let ServeOp::Add { x, y } = &req.op else { unreachable!() };
        x.iter().zip(y).map(|(&a, &b)| (F16::from_f32(a) + F16::from_f32(b)).to_f32()).collect()
    };

    let run = || {
        let mut ctx = PimContext::small_system();
        let mut server = Server::new(&mut ctx, ServeConfig::default());
        let report = server.run(vec![make(0, 0.0), make(1, 3.0)]).unwrap();
        let triggers: Vec<u64> =
            (0..16).map(|ch| ctx.sys.channel(ch).sink().stats().pim_triggers).collect();
        (report, triggers)
    };

    let (report, triggers) = run();
    for (req, outcome) in [make(0, 0.0), make(1, 3.0)].iter().zip(&report.outcomes) {
        assert_eq!(outcome.disposition, Disposition::Completed, "tenant {}", req.tenant);
        assert_eq!(outcome.result.as_ref().unwrap(), &oracle(req), "tenant {}", req.tenant);
    }
    // Serialized, not parallel: the contended group is a single resource,
    // so one tenant starts only after the other finishes.
    let (a, b) = (&report.outcomes[0], &report.outcomes[1]);
    let (first, second) = if a.started <= b.started { (a, b) } else { (b, a) };
    assert!(
        second.started.unwrap() >= first.finished,
        "contending requests overlapped: {first:?} vs {second:?}"
    );
    // Neither tenant's kernels leaked off the pinned group (channels 4..8).
    for (ch, &t) in triggers.iter().enumerate() {
        if (4..8).contains(&ch) {
            assert!(t > 0, "channel {ch} inside the pinned group never executed");
        } else {
            assert_eq!(t, 0, "PIM work escaped the pinned group onto channel {ch}");
        }
    }
    // And the whole contended schedule is deterministic.
    assert_eq!(report, run().0);
}

/// Reads the kernel's output region (unit 0, row 0) back as f32.
fn read_back(ctx: &PimContext, ch: usize, op: StreamOp) -> Vec<f32> {
    let cfg = ctx.sys.pim_config().clone();
    let (_, _, z_col) = pim_runtime::kernels::stream_columns(op, &cfg);
    let mut out = Vec::new();
    for u in 0..8 {
        for c in 0..8 {
            let v: LaneVec = pim_runtime::layout::load_block(&ctx.sys, ch, u, 0, z_col + c);
            out.extend(v.to_f32());
        }
    }
    out
}
