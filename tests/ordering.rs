//! Integration tests of the instruction-ordering story (Section IV-C,
//! Fig. 5): FR-FCFS reordering, the AAM tolerance window, fences, and the
//! no-fence controller mode — all observed functionally, not assumed.

use pim_host::ExecutionMode;
use pim_runtime::{PimBlas, PimContext};

fn reference_add(x: &[f32], y: &[f32]) -> Vec<f32> {
    x.iter().zip(y.iter()).map(|(a, b)| a + b).collect()
}

fn max_err(z: &[f32], want: &[f32]) -> f32 {
    z.iter().zip(want.iter()).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
}

#[test]
fn aam_makes_in_window_reordering_invisible() {
    // Shuffle every commutative batch with several different seeds: the
    // result must be bit-identical to in-order execution, because AAM
    // derives register indices from the column address, not arrival order.
    let n = 8192;
    let x: Vec<f32> = (0..n).map(|i| (i % 211) as f32).collect();
    let y: Vec<f32> = (0..n).map(|i| (i % 173) as f32).collect();
    let want = reference_add(&x, &y);
    for seed in [1u64, 42, 0xDEAD, 7777] {
        let mut ctx = PimContext::small_system();
        ctx.set_mode(ExecutionMode::Fenced { reorder_seed: Some(seed) });
        let (z, _) = PimBlas::add(&mut ctx, &x, &y).unwrap();
        assert_eq!(max_err(&z, &want), 0.0, "seed {seed}");
    }
}

#[test]
fn unfenced_reordering_corrupts_results() {
    // Remove the fences while the controller reorders beyond the AAM
    // window: Fig. 5(c)'s wrong-operand failure, observed.
    let n = 8192;
    let x: Vec<f32> = (0..n).map(|i| (i % 211) as f32).collect();
    let y: Vec<f32> = (0..n).map(|i| (i % 173) as f32).collect();
    let want = reference_add(&x, &y);
    let mut corrupted = 0;
    for seed in [1u64, 42, 0xDEAD] {
        let mut ctx = PimContext::small_system();
        ctx.set_mode(ExecutionMode::UnfencedReordered { seed });
        let (z, _) = PimBlas::add(&mut ctx, &x, &y).unwrap();
        if max_err(&z, &want) > 0.0 {
            corrupted += 1;
        }
    }
    assert_eq!(corrupted, 3, "every unfenced reordered run must corrupt data");
}

#[test]
fn ordered_mode_is_correct_and_faster() {
    // The §VII-B what-if: an order-preserving PIM-mode controller needs no
    // fences — same results, fewer cycles.
    let n = 16384;
    let x: Vec<f32> = (0..n).map(|i| (i % 97) as f32 * 0.5).collect();
    let y: Vec<f32> = (0..n).map(|i| (i % 61) as f32 * 0.25).collect();
    let want = reference_add(&x, &y);

    let mut fenced_ctx = PimContext::small_system();
    let (zf, rf) = PimBlas::add(&mut fenced_ctx, &x, &y).unwrap();

    let mut ordered_ctx = PimContext::small_system();
    ordered_ctx.set_mode(ExecutionMode::Ordered);
    let (zo, ro) = PimBlas::add(&mut ordered_ctx, &x, &y).unwrap();

    assert_eq!(max_err(&zf, &want), 0.0);
    assert_eq!(zf, zo, "ordering regime must not change results");
    assert!(ro.cycles < rf.cycles, "ordered {} !< fenced {}", ro.cycles, rf.cycles);
    assert_eq!(ro.fences, 0);
    assert!(rf.fences > 0);
}

#[test]
fn gemv_survives_in_window_reordering() {
    // GEMV's MAC groups are fenced_ordered (the leading WR feeds the SRF),
    // so the engine never shuffles them — results must match the in-order
    // run under a reordering controller configuration.
    let (n, k) = (128, 96);
    let w: Vec<f32> = (0..n * k).map(|i| ((i % 29) as f32 - 14.0) / 16.0).collect();
    let x: Vec<f32> = (0..k).map(|i| ((i % 13) as f32 - 6.0) / 8.0).collect();

    let mut inorder = PimContext::small_system();
    let (a, _) = PimBlas::gemv(&mut inorder, &w, n, k, &x).unwrap();

    let mut reordered = PimContext::small_system();
    reordered.set_mode(ExecutionMode::Fenced { reorder_seed: Some(99) });
    let (b, _) = PimBlas::gemv(&mut reordered, &w, n, k, &x).unwrap();

    assert_eq!(a, b);
}

#[test]
fn fence_count_tracks_the_grf_depth() {
    // "a barrier for every 8 DRAM commands ... limited to the number of
    // registers in GRF": the ADD kernel fences 3 windows per row of 8
    // blocks (x-loads, y-adds, z-stores).
    let mut ctx = PimContext::small_system();
    let elements = 16 * 16 * 8 * 8 * 2; // exactly 2 rows per unit (16 ch)
    let x = vec![1.0f32; elements];
    let y = vec![2.0f32; elements];
    let (_, report) = PimBlas::add(&mut ctx, &x, &y).unwrap();
    // 2 rows × 3 windows × 16 channels = 96 data fences (choreography adds
    // none: setup batches are unfenced).
    assert_eq!(report.fences, 96, "fences: {}", report.fences);
}
