//! Integration tests for the `pim-verify` static analysis stack: the
//! committed invalid corpus, the valid trace fixtures, the no-fence race
//! reproduction, and the strict launch mode.

use std::path::PathBuf;

use pim_bench::lint;
use pim_core::isa::{Instruction, Operand};
use pim_core::PimConfig;
use pim_runtime::kernels::{gemv_batches, gemv_microkernel};
use pim_runtime::{Executor, PimContext, PimError};
use pim_verify::{check_fences, events_from_batches, strip_fences, PvCode, StreamEvent};

fn repo_tests_dir(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests").join(sub)
}

fn sources_in(sub: &str) -> Vec<(String, String)> {
    let dir = repo_tests_dir(sub);
    let mut out: Vec<(String, String)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {}: {e}", dir.display()))
        .map(|entry| {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).unwrap();
            (name, text)
        })
        .collect();
    out.sort();
    out
}

fn lint_by_extension(cfg: &PimConfig, name: &str, source: &str) -> pim_verify::Report {
    if name.ends_with(".pim") {
        lint::lint_pim_source(cfg, source)
    } else if name.ends_with(".trace") {
        lint::lint_trace_source(cfg, source)
    } else {
        panic!("{name}: corpus files must be .pim or .trace");
    }
}

/// Every corpus file declares the diagnostic it reproduces in its
/// `; expect: PV###` header, and the linter produces exactly that code.
#[test]
fn corpus_files_produce_their_expected_codes() {
    let cfg = PimConfig::paper();
    let mut kernel_codes = std::collections::BTreeSet::new();
    let mut stream_codes = std::collections::BTreeSet::new();
    let corpus = sources_in("corpus");
    assert!(corpus.len() >= 20, "corpus shrank to {} files", corpus.len());
    for (name, source) in &corpus {
        let expected = lint::expected_code(source)
            .unwrap_or_else(|| panic!("{name}: missing `; expect: PV###` header"));
        let report = lint_by_extension(&cfg, name, source);
        assert!(
            report.has_code(expected),
            "{name}: expected {expected}, got:\n{}",
            report.render(name)
        );
        if name.ends_with(".pim") {
            kernel_codes.insert(expected);
        } else {
            stream_codes.insert(expected);
        }
    }
    // The acceptance bar: at least ten distinct PV codes per corpus half.
    assert!(kernel_codes.len() >= 10, "only {} distinct kernel codes", kernel_codes.len());
    assert!(stream_codes.len() >= 10, "only {} distinct stream codes", stream_codes.len());
}

/// The valid trace fixtures pass both stream passes with zero diagnostics.
#[test]
fn trace_fixtures_lint_clean() {
    let cfg = PimConfig::paper();
    let fixtures = sources_in("fixtures");
    assert!(fixtures.len() >= 2, "expected at least two valid fixtures");
    for (name, source) in &fixtures {
        let report = lint::lint_trace_source(&cfg, source);
        assert!(report.is_clean(), "{name}:\n{}", report.render(name));
    }
}

/// The shipped example kernel sources assemble and verify clean.
#[test]
fn example_kernel_sources_lint_clean() {
    let cfg = PimConfig::paper();
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/kernels");
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.display().to_string();
        let report = lint::lint_pim_source(&cfg, &std::fs::read_to_string(&path).unwrap());
        assert!(report.is_clean(), "{name}:\n{}", report.render(&name));
        seen += 1;
    }
    assert!(seen >= 2, "expected the shipped example kernels under examples/kernels/");
}

/// Every built-in microkernel passes the kernel verifier and every
/// executor choreography passes the protocol and fence passes.
#[test]
fn builtin_kernels_and_streams_are_clean() {
    for (name, report) in lint::builtin_kernel_reports() {
        assert!(report.is_clean(), "{name}:\n{}", report.render(&name));
    }
    for (name, protocol, fences) in lint::builtin_stream_reports() {
        assert!(protocol.is_clean(), "{name}:\n{}", protocol.render(&name));
        assert!(fences.is_clean(), "{name}:\n{}", fences.render(&name));
    }
}

/// The GEMV choreography with the host readback of the accumulators: the
/// shipped (fenced) stream is race-free, and the detector pinpoints the
/// unfenced-readback race (PV202) the moment the fences are stripped —
/// the no-fence experiment of Section VII-B, statically.
#[test]
fn fence_detector_flags_stripped_gemv_readback() {
    let cfg = PimConfig::paper();
    let k = 64usize;
    let x = vec![1.0f32; k];
    let prog = gemv_microkernel((k / 8) as u32, &cfg);
    let data = gemv_batches(k, 0x100, &x, &cfg);
    let batches = Executor::full_kernel(&prog, None, true, &data);
    let mut events = events_from_batches(&batches);
    let n = events.len();
    let bank = pim_dram::BankAddr::new(0, 0);
    events.push(StreamEvent::cmd(n, pim_dram::Command::Act { bank, row: pim_core::conf::GRF_ROW }));
    for i in 0..8u32 {
        events
            .push(StreamEvent::cmd(n + 1 + i as usize, pim_dram::Command::Rd { bank, col: 8 + i }));
    }
    events.push(StreamEvent::cmd(n + 9, pim_dram::Command::Pre { bank }));

    let fenced = check_fences(&cfg, &events);
    assert!(fenced.is_clean(), "fenced GEMV should be race-free:\n{}", fenced.render("gemv"));

    let stripped = strip_fences(&events);
    let report = check_fences(&cfg, &stripped);
    assert!(
        report.has_code(PvCode::Pv202UnfencedGrfReadback),
        "stripped GEMV should race:\n{}",
        report.render("gemv-nofence")
    );
}

/// Strict launch mode surfaces the very same report the standalone
/// verifier produces for the rejected kernel.
#[test]
fn strict_mode_report_matches_standalone_verifier() {
    let mut ctx = PimContext::small_system();
    ctx.set_strict(true);
    let prog = vec![
        Instruction::Mac {
            dst: Operand::grf_a(0),
            src0: Operand::even_bank(),
            src1: Operand::odd_bank(),
            aam: false,
        },
        Instruction::Exit,
    ];
    let err = Executor::try_run(&mut ctx, 1, &prog, None, false, &[]).unwrap_err();
    let PimError::InvalidKernel { report } = err else {
        panic!("expected InvalidKernel");
    };
    let standalone = pim_verify::verify_program(ctx.sys.pim_config(), &prog);
    assert_eq!(report, standalone);
    assert!(report.has_code(PvCode::Pv002MultipleBankOperands));
}
