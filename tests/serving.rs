//! End-to-end tests of the deterministic serving layer
//! (`pim_runtime::serve`) over the full PIM stack: overload never corrupts
//! an answer, every request ends in a typed disposition, and a seeded
//! campaign is byte-identical across execution backends.

use pim_bench::json;
use pim_bench::serve::{report_json, run_campaign, ServeCampaignConfig};
use pim_faults::FaultPlan;
use pim_fp16::F16;
use pim_host::ExecutionBackend;
use pim_runtime::{
    Disposition, PimContext, RejectReason, ServeConfig, ServeOp, ServeRequest, Server,
};

fn add_req(tenant: u32, arrival: u64, deadline: u64, n: usize) -> ServeRequest {
    let x: Vec<f32> = (0..n).map(|i| ((i * 7 + 3) % 41) as f32 * 0.25 - 5.0).collect();
    let y: Vec<f32> = (0..n).map(|i| ((i * 11 + 1) % 29) as f32 * 0.5 - 7.0).collect();
    ServeRequest {
        tenant,
        arrival,
        deadline,
        groups: None,
        budget: None,
        op: ServeOp::Add { x, y },
    }
}

fn oracle(req: &ServeRequest) -> Vec<f32> {
    let ServeOp::Add { x, y } = &req.op else { unreachable!() };
    x.iter().zip(y).map(|(&a, &b)| (F16::from_f32(a) + F16::from_f32(b)).to_f32()).collect()
}

/// The headline acceptance property: a seeded overload campaign (arrival
/// rate beyond sustainable throughput, nonzero fault rate) completes with
/// zero wrong answers and zero panics, every request ending in one of the
/// four typed dispositions.
#[test]
fn overloaded_faulty_campaign_never_lies() {
    let mut ctx = PimContext::small_system();
    let mut plan = FaultPlan::quiet(42);
    plan.cell_flip_rate = 1e-3;
    plan.cmd_drop_rate = 2e-4;
    ctx.inject_faults(&plan);

    // 40 requests at ~300-cycle spacing against ~550-cycle service, with
    // only 5000 cycles of slack: far past sustainable throughput.
    let requests: Vec<ServeRequest> =
        (0..40).map(|i| add_req(i % 3, (i as u64) * 300, (i as u64) * 300 + 5_000, 1024)).collect();
    let oracles: Vec<Vec<f32>> = requests.iter().map(oracle).collect();

    let cfg = ServeConfig { queue_capacity: 4, ..ServeConfig::default() };
    let mut server = Server::new(&mut ctx, cfg);
    let report = server.run(requests).expect("serving never fails on load or faults");

    assert_eq!(report.outcomes.len(), 40);
    for (o, want) in report.outcomes.iter().zip(&oracles) {
        // Typed disposition, never a panic or an untyped state.
        assert!(matches!(
            o.disposition,
            Disposition::Completed
                | Disposition::Shed(RejectReason::QueueFull | RejectReason::Overloaded)
                | Disposition::DeadlineMissed
                | Disposition::FellBackToHost
        ));
        // A result is present exactly when the disposition says so, and
        // when present it is bit-exact.
        match o.disposition {
            Disposition::Completed | Disposition::FellBackToHost => {
                let got = o.result.as_ref().expect("served requests carry results");
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "request {} returned wrong data", o.id);
                }
            }
            _ => assert!(o.result.is_none(), "unserved request {} has a result", o.id),
        }
    }
    let s = &report.stats;
    assert_eq!(s.submitted, 40);
    assert!(
        s.shed_queue_full + s.shed_overloaded + s.deadline_missed > 0,
        "this trace must overload the scheduler: {s:?}"
    );
    // Every stat counter agrees with the disposition it summarizes.
    let count = |pred: fn(&Disposition) -> bool| {
        report.outcomes.iter().filter(|o| pred(&o.disposition)).count() as u64
    };
    assert_eq!(s.completed, count(|d| *d == Disposition::Completed));
    assert_eq!(s.shed_queue_full, count(|d| *d == Disposition::Shed(RejectReason::QueueFull)));
    assert_eq!(s.shed_overloaded, count(|d| *d == Disposition::Shed(RejectReason::Overloaded)));
    assert_eq!(s.deadline_missed, count(|d| *d == Disposition::DeadlineMissed));
}

/// The serving trace is a pure function of the request trace and seed:
/// identical runs produce identical reports (outcomes, stats, end cycle).
#[test]
fn serving_is_deterministic_across_identical_runs() {
    let run = || {
        let mut ctx = PimContext::small_system();
        let mut plan = FaultPlan::quiet(7);
        plan.cell_flip_rate = 5e-4;
        ctx.inject_faults(&plan);
        let requests: Vec<ServeRequest> = (0..12)
            .map(|i| add_req(i % 2, (i as u64) * 800, (i as u64) * 800 + 50_000, 768))
            .collect();
        let mut server = Server::new(&mut ctx, ServeConfig::default());
        server.run(requests).unwrap()
    };
    assert_eq!(run(), run());
}

/// Backend invariance end-to-end: the serialized campaign report is
/// byte-identical under Sequential, Threads(2), and Threads(4).
#[test]
fn campaign_report_is_byte_identical_across_backends() {
    let mk = |backend| {
        let cfg = ServeCampaignConfig {
            elements: 640,
            requests: 10,
            intervals: vec![400, 20_000],
            fault_rates: vec![0.0, 1e-3],
            backend,
            ..ServeCampaignConfig::default()
        };
        let points = run_campaign(&cfg).unwrap();
        json::to_string(&report_json(&cfg, &points))
    };
    let seq = mk(ExecutionBackend::Sequential);
    assert_eq!(seq, mk(ExecutionBackend::Threads(2)), "Threads(2) diverged");
    assert_eq!(seq, mk(ExecutionBackend::Threads(4)), "Threads(4) diverged");
}

/// A channel-group hard failure trips that group's breaker; subsequent
/// requests route around it and still return exact results.
#[test]
fn hard_faults_trip_breakers_and_work_reroutes() {
    // Find a fault seed where at least one but not all channels hard-fail.
    let mut plan = FaultPlan::quiet(0);
    plan.chan_fail_rate = 0.1;
    for seed in 0..3000 {
        plan.seed = seed;
        let failed = (0..16).filter(|&c| plan.channel_failed(c)).count();
        if failed > 0 && failed <= 8 {
            break;
        }
    }
    let mut ctx = PimContext::small_system();
    ctx.inject_faults(&plan);
    let cfg = ServeConfig { breaker_threshold: 1, ..ServeConfig::default() };
    let mut server = Server::new(&mut ctx, cfg);
    let requests: Vec<ServeRequest> = (0..5)
        .map(|i| add_req(0, (i as u64) * 2_000, (i as u64) * 2_000 + 60_000_000, 1536))
        .collect();
    let oracles: Vec<Vec<f32>> = requests.iter().map(oracle).collect();
    let report = server.run(requests).unwrap();
    for (o, want) in report.outcomes.iter().zip(&oracles) {
        if let Some(got) = &o.result {
            assert_eq!(got, want, "request {} returned wrong data", o.id);
        }
    }
    assert!(report.stats.breaker_trips > 0, "{:?}", report.stats);
    assert!(report.stats.completed > 0, "{:?}", report.stats);
}

/// With profiling enabled, the srv.* counters mirror the report's stats.
#[test]
fn srv_counters_mirror_stats() {
    let mut ctx = PimContext::small_system();
    let rec = pim_obs::Recorder::vec();
    ctx.enable_profiling(rec.clone());
    let mut server = Server::new(&mut ctx, ServeConfig::default());
    let requests: Vec<ServeRequest> =
        (0..4).map(|i| add_req(i, (i as u64) * 1_000, 50_000_000, 512)).collect();
    let report = server.run(requests).unwrap();
    let m = rec.metrics().registry;
    assert_eq!(m.counter(pim_obs::names::SRV_SUBMITTED), report.stats.submitted);
    assert_eq!(m.counter(pim_obs::names::SRV_ADMITTED), report.stats.admitted);
    assert_eq!(m.counter(pim_obs::names::SRV_COMPLETED), report.stats.completed);
    assert_eq!(m.counter(pim_obs::names::SRV_DEADLINE_MISSED), report.stats.deadline_missed);
}
