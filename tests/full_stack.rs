//! Full-stack integration tests: application-level ops through the entire
//! software stack (custom op → PIM-BLAS → executor → kernel engine →
//! memory controller → PIM device → banks) with functional verification
//! against f32 references.

use pim_fp16::F16;
use pim_runtime::ops::PimOp;
use pim_runtime::{PimBlas, PimContext};

#[test]
fn custom_ops_compute_correct_results() {
    let mut ctx = PimContext::small_system();
    let n = 5000; // deliberately not a multiple of 16: exercises padding

    let x: Vec<f32> = (0..n).map(|i| ((i % 37) as f32 - 18.0) * 0.25).collect();
    let y: Vec<f32> = (0..n).map(|i| ((i % 23) as f32 - 11.0) * 0.5).collect();

    let (z, _) = PimOp::Add { x: x.clone(), y: y.clone() }.execute(&mut ctx).unwrap();
    for i in 0..n {
        assert_eq!(z[i], x[i] + y[i], "add element {i}");
    }

    let (z, _) = PimOp::Mul { x: x.clone(), y: y.clone() }.execute(&mut ctx).unwrap();
    for i in 0..n {
        assert_eq!(z[i], x[i] * y[i], "mul element {i}");
    }

    let (z, _) = PimOp::Relu { x: x.clone() }.execute(&mut ctx).unwrap();
    for i in 0..n {
        assert_eq!(z[i], x[i].max(0.0), "relu element {i}");
    }

    let (z, _) = PimOp::Bn { x: x.clone(), scale: 2.0, shift: -1.0 }.execute(&mut ctx).unwrap();
    for i in 0..n {
        let want = F16::from_f32(x[i]).mac(F16::from_f32(2.0), F16::from_f32(-1.0)).to_f32();
        assert_eq!(z[i], want, "bn element {i}");
    }
}

#[test]
fn gemv_through_the_full_stack_matches_reference() {
    let mut ctx = PimContext::small_system();
    let (n, k) = (300, 200); // ragged sizes exercise padding in both dims
    let w: Vec<f32> = (0..n * k).map(|i| ((i * 7 % 41) as f32 - 20.0) / 32.0).collect();
    let x: Vec<f32> = (0..k).map(|i| ((i * 3 % 17) as f32 - 8.0) / 16.0).collect();
    let (out, report) = PimBlas::gemv(&mut ctx, &w, n, k, &x).unwrap();
    let reference = PimBlas::reference_gemv(&w, n, k, &x);
    for o in 0..n {
        let err = (out[o] - reference[o]).abs();
        let tol = 0.02 * reference[o].abs().max(1.0);
        assert!(err <= tol, "output {o}: {} vs {} (err {err})", out[o], reference[o]);
    }
    assert!(report.commands > 0 && report.fences > 0 && report.pim_triggers > 0);
}

#[test]
fn lstm_cell_matches_host_reference() {
    let mut ctx = PimContext::small_system();
    let h = 48;
    let xdim = 32;
    let w_x: Vec<f32> = (0..4 * h * xdim).map(|i| ((i % 19) as f32 - 9.0) / 128.0).collect();
    let w_h: Vec<f32> = (0..4 * h * h).map(|i| ((i % 11) as f32 - 5.0) / 128.0).collect();
    let bias: Vec<f32> = (0..4 * h).map(|i| ((i % 5) as f32 - 2.0) / 16.0).collect();
    let x = vec![0.25f32; xdim];
    let h0 = vec![0.1f32; h];
    let c0 = vec![-0.1f32; h];

    let (h1, c1, _) = PimBlas::lstm_cell(&mut ctx, &w_x, &w_h, &bias, &x, &h0, &c0).unwrap();

    // f32 reference of the same cell.
    let gemv = |w: &[f32], rows: usize, cols: usize, v: &[f32]| -> Vec<f32> {
        (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| F16::from_f32(w[r * cols + c]).to_f32() * F16::from_f32(v[c]).to_f32())
                    .sum::<f32>()
            })
            .collect()
    };
    let gx = gemv(&w_x, 4 * h, xdim, &x);
    let gh = gemv(&w_h, 4 * h, h, &h0);
    let sigmoid = |v: f32| 1.0 / (1.0 + (-v).exp());
    for j in 0..h {
        let i_g = sigmoid(gx[j] + gh[j] + bias[j]);
        let f_g = sigmoid(gx[h + j] + gh[h + j] + bias[h + j]);
        let g_g = (gx[2 * h + j] + gh[2 * h + j] + bias[2 * h + j]).tanh();
        let o_g = sigmoid(gx[3 * h + j] + gh[3 * h + j] + bias[3 * h + j]);
        let c_want = f_g * c0[j] + i_g * g_g;
        let h_want = o_g * c_want.tanh();
        assert!((c1[j] - c_want).abs() < 1e-2, "c[{j}]: {} vs {c_want}", c1[j]);
        assert!((h1[j] - h_want).abs() < 1e-2, "h[{j}]: {} vs {h_want}", h1[j]);
    }
}

#[test]
fn execution_is_deterministic() {
    // "executing one wide-SIMD operation commanded by a PIM instruction
    // with deterministic latency in a lock-step manner" — identical runs
    // must produce identical cycle counts and identical results.
    let run = || {
        let mut ctx = PimContext::small_system();
        let x: Vec<f32> = (0..4096).map(|i| (i % 97) as f32).collect();
        let y: Vec<f32> = (0..4096).map(|i| (i % 89) as f32).collect();
        let (z, report) = PimBlas::add(&mut ctx, &x, &y).unwrap();
        (z, report.cycles, report.commands)
    };
    let (z1, c1, n1) = run();
    let (z2, c2, n2) = run();
    assert_eq!(z1, z2);
    assert_eq!(c1, c2, "cycle counts must be bit-identical");
    assert_eq!(n1, n2);
}

#[test]
fn sequential_kernels_share_the_device() {
    // Several BLAS calls back-to-back on one context: the memory manager
    // hands out disjoint regions and results never interfere.
    let mut ctx = PimContext::small_system();
    let a: Vec<f32> = (0..1024).map(|i| i as f32).collect();
    let b = vec![1.0f32; 1024];
    let (s1, _) = PimBlas::add(&mut ctx, &a, &b).unwrap();
    let (s2, _) = PimBlas::mul(&mut ctx, &a, &b).unwrap();
    let (s3, _) = PimBlas::relu(&mut ctx, &a).unwrap();
    for i in 0..1024 {
        assert_eq!(s1[i], a[i] + 1.0);
        assert_eq!(s2[i], a[i]);
        assert_eq!(s3[i], a[i]);
    }
    // The bump allocator really advanced.
    assert!(ctx.mm.min_available() < ctx.driver.reserved_rows());
}

#[test]
fn kernel_reports_compose() {
    let mut ctx = PimContext::small_system();
    let x = vec![1.0f32; 2048];
    let (_, r1) = PimBlas::relu(&mut ctx, &x).unwrap();
    let (_, r2) = PimBlas::relu(&mut ctx, &x).unwrap();
    let mut sum = r1;
    sum.absorb(&r2);
    assert_eq!(sum.commands, 2 * r2.commands);
    assert!(sum.seconds > r2.seconds);
}
