//! ECC integration (Section VIII): "future PIM based on the proposed
//! architecture can easily support ECC as each PIM execution unit reads
//! and writes data at the same data access granularity as a host
//! processor [...] PIM may leverage the on-die ECC engine".
//!
//! The granularity argument is what makes this easy, and this test
//! exercises it end to end: operands are stored with SECDED sidecars at
//! 32-byte column granularity, a bit flip is injected in a bank, a
//! host-driven scrub pass (standard commands only) corrects the data in
//! place, and the PIM kernel then computes the right answer.

use pim_core::LaneVec;
use pim_dram::ecc::{self, EccResult, EccWord};
use pim_dram::BankAddr;
use pim_runtime::{layout, PimBlas, PimContext};

/// Stores `block`'s ECC sidecar (4 check bytes per 32-byte block) in a
/// shadow row, mirroring an on-die ECC array.
fn checks_of(block: &[u8; 32]) -> [u8; 4] {
    let words = ecc::encode_block(block);
    std::array::from_fn(|i| words[i].check)
}

#[test]
fn scrub_pass_corrects_a_flipped_bit_before_pim_runs() {
    let mut ctx = PimContext::small_system();
    let n = 256usize;
    let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let y: Vec<f32> = (0..n).map(|i| (2 * i) as f32).collect();

    // Stage the operands exactly as PimBlas::add would (columns 0-7 x,
    // 8-15 y in row 0 of each unit's even bank), remembering sidecars.
    let map = layout::BlockMap::full(&ctx.sys);
    let xb = layout::f32_to_blocks(&x);
    let yb = layout::f32_to_blocks(&y);
    let mut sidecars = std::collections::HashMap::new();
    for (b, blk) in xb.iter().enumerate() {
        let (ch, u, slot) = map.locate(b);
        layout::store_block(&mut ctx.sys, ch, u, 0, slot as u32, blk);
        sidecars.insert((ch, u, slot as u32), checks_of(&blk.to_block()));
    }
    for (b, blk) in yb.iter().enumerate() {
        let (ch, u, slot) = map.locate(b);
        layout::store_block(&mut ctx.sys, ch, u, 0, 8 + slot as u32, blk);
        sidecars.insert((ch, u, 8 + slot as u32), checks_of(&blk.to_block()));
    }

    // A cosmic ray flips bit 5 of byte 3 in channel 1, unit 0's x block
    // (with 256 elements, the 16 x blocks land on channels 0-15, unit 0).
    let victim = (1usize, 0usize, 0u32);
    let bank = BankAddr::from_flat_index(2 * victim.1);
    let mut corrupted = ctx.sys.channel(victim.0).sink().dram().bank(bank).peek_block(0, victim.2);
    corrupted[3] ^= 1 << 5;
    ctx.sys
        .channel_mut(victim.0)
        .sink_mut()
        .dram_mut()
        .bank_mut(bank)
        .poke_block(0, victim.2, &corrupted);

    // Host-driven scrub: read every protected block, decode against its
    // sidecar, write back corrections. One correction expected.
    let mut corrections = 0;
    let mut uncorrectable = 0;
    for (&(ch, u, col), &checks) in &sidecars {
        let bank = BankAddr::from_flat_index(2 * u);
        let data = ctx.sys.channel(ch).sink().dram().bank(bank).peek_block(0, col);
        let words: [EccWord; 4] = std::array::from_fn(|i| {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&data[i * 8..i * 8 + 8]);
            EccWord { data: u64::from_le_bytes(bytes), check: checks[i] }
        });
        match ecc::decode_block(&words) {
            Some((clean, true)) => {
                corrections += 1;
                ctx.sys
                    .channel_mut(ch)
                    .sink_mut()
                    .dram_mut()
                    .bank_mut(bank)
                    .poke_block(0, col, &clean);
            }
            Some((_, false)) => {}
            None => uncorrectable += 1,
        }
    }
    assert_eq!(corrections, 1, "exactly the injected flip is corrected");
    assert_eq!(uncorrectable, 0);

    // Sanity: the victim block is byte-identical to the original again.
    let healed = ctx.sys.channel(victim.0).sink().dram().bank(bank).peek_block(0, victim.2);
    let original_index = (0..xb.len())
        .find(|&b| map.locate(b) == (victim.0, victim.1, victim.2 as usize))
        .expect("victim block exists");
    assert_eq!(healed, xb[original_index].to_block());

    // Now the PIM kernel computes on corrected data. (Fresh context so the
    // BLAS call lays out its own copy; the scrubbed values feed it.)
    let x_fixed = layout::gather_vector(&ctx.sys, &map, n, |b| {
        let (_, _, slot) = map.locate(b);
        (0, slot as u32)
    });
    let mut ctx2 = PimContext::small_system();
    let (z, _) = PimBlas::add(&mut ctx2, &x_fixed, &y).unwrap();
    for i in 0..n {
        assert_eq!(z[i], x[i] + y[i], "element {i} after scrub");
    }
}

#[test]
fn double_error_is_flagged_not_silently_consumed() {
    // Two flips in one codeword: the scrub must refuse to "correct".
    let block: [u8; 32] = std::array::from_fn(|i| (i * 11) as u8);
    let checks = checks_of(&block);
    let mut bad = block;
    bad[0] ^= 0b11; // two bits in the first 64-bit word
    let words: [EccWord; 4] = std::array::from_fn(|i| {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&bad[i * 8..i * 8 + 8]);
        EccWord { data: u64::from_le_bytes(bytes), check: checks[i] }
    });
    assert_eq!(ecc::decode_block(&words), None);
    // And single-word API agrees.
    let w = EccWord { data: u64::from_le_bytes(bad[0..8].try_into().unwrap()), check: checks[0] };
    assert_eq!(ecc::decode(w), EccResult::Uncorrectable);
}

#[test]
fn pim_write_back_granularity_matches_ecc_granularity() {
    // The §VIII argument itself: a PIM result write is one 32-byte column
    // block = exactly four SECDED words; re-encoding after a PIM store is
    // always possible without read-modify-write.
    let v = LaneVec::from_f32([1.5; 16]);
    let words = ecc::encode_block(&v.to_block());
    let (back, corrected) = ecc::decode_block(&words).unwrap();
    assert_eq!(back, v.to_block());
    assert!(!corrected);
    assert_eq!(words.len() * 8, 32, "4 codewords cover one column access");
}
