//! Claim-by-claim traceability: every *quantitative sentence* of the paper
//! that is not already pinned by a figure/table test, asserted against the
//! implementation. Each test quotes the sentence it covers.

use pim_core::{conf, isa, PimChannel, PimConfig, PimMode, PimUnit};
use pim_dram::{BankAddr, Command, CommandSink, TimingParams};
use pim_host::{HostConfig, PimSystem, THREADS_PER_GROUP};

/// "a total of 114 operand combinations for computations, and 24 different
/// ways of data movement" (Section III-C).
#[test]
fn claim_114_compute_combinations() {
    let c = isa::combination_counts();
    assert_eq!(c.compute_total(), 114);
    assert_eq!(c.mov, 24);
}

/// "There are total of 9 instructions" (Section III-C): NOP, JUMP, EXIT,
/// ADD, MUL, MAD, MAC, MOV, FILL — every opcode nibble 0..=8 decodes and
/// 9..=15 are rejected.
#[test]
fn claim_nine_instructions() {
    let mut decodable = 0;
    for opcode in 0u32..16 {
        if isa::Instruction::decode(opcode << 28).is_ok() {
            decodable += 1;
        }
    }
    assert_eq!(decodable, 9);
}

/// "The CRF serving as an instruction buffer comprises 32 32-bit
/// registers. GRF has 16 256-bit registers that are evenly split into
/// GRF_A and GRF_B [...] SRF [...] consists of SRF_M and SRF_A, each with
/// 8 registers" (Section IV-A).
#[test]
fn claim_register_file_complement() {
    let c = PimConfig::paper();
    assert_eq!(c.crf_entries, 32);
    assert_eq!(2 * c.grf_entries_per_file, 16);
    let u = PimUnit::new();
    // 8 entries per GRF file and per SRF file — indices 0..8 valid.
    u.grf_a().read(7);
    u.grf_b().read(7);
    u.srf_m().read(7);
    u.srf_a().read(7);
}

/// "It is designed to operate at the same frequency as the HBM2 DRAM
/// (250MHz~300MHz) [...] the operating frequency of HBM2 DRAM is 4× slower
/// than the memory bus frequency (1.0GHz~1.2GHz)" (Section VI).
#[test]
fn claim_unit_clock_is_bus_over_4() {
    let c = PimConfig::paper();
    let t = TimingParams::hbm2();
    assert_eq!(t.bus_mhz / c.unit_mhz, 4);
    let t0 = TimingParams::hbm2_2gbps();
    assert_eq!(t0.bus_mhz, 1000);
}

/// "delivering up to 9.6GFLOPS of throughput" per unit (Table IV) and the
/// device-level "4.915TB/s" on-chip compute bandwidth for 4 devices
/// (Section VI).
#[test]
fn claim_throughput_numbers() {
    let c = PimConfig::paper();
    assert_eq!(c.unit_gflops(), 9.6);
    let t = TimingParams::hbm2();
    let four_devices = 4.0 * t.peak_pch_allbank_bandwidth_gbs(c.units_per_pch) * 16.0;
    assert!((four_devices - 4915.2).abs() < 0.1, "got {four_devices}");
}

/// "we implement a PIM kernel that allocates 64 thread groups for PIM-HBM
/// because there are 64 pCHs in 4 HBM2 cubes (16 pCHs each) [...]
/// resulting in a total of 1,024 threads" (Section V-B).
#[test]
fn claim_64_groups_1024_threads() {
    let sys = PimSystem::new(HostConfig::paper(), PimConfig::paper());
    assert_eq!(sys.channel_count(), 64);
    assert_eq!(sys.channel_count() * THREADS_PER_GROUP, 1024);
}

/// "a total of 32 PIM execution units as a PIM-HBM DRAM die has 4 pCHs
/// and a pCH is connected to 16 banks (8 PIM execution units per pCH × 4
/// pCHs per PIM-HBM DRAM die)" (Section VI).
#[test]
fn claim_32_units_per_die() {
    let c = PimConfig::paper();
    let pchs_per_die = 4;
    assert_eq!(c.units_per_pch * pchs_per_die, 32);
    // And one unit per bank pair: 16 banks / 2.
    assert_eq!(c.units_per_pch, pim_dram::BANKS_PER_PCH / 2);
}

/// "executing one wide-SIMD operation commanded by a PIM instruction with
/// deterministic latency in a lock-step manner" (Section III-A): the same
/// trigger sequence always consumes the same instructions at the same
/// PPCs, independent of data.
#[test]
fn claim_deterministic_lock_step() {
    let run = |values: f32| -> Vec<usize> {
        let mut u = PimUnit::new();
        u.crf_mut().load_program(&[
            isa::Instruction::Fill {
                dst: isa::Operand::grf_a(0),
                src: isa::Operand::even_bank(),
                aam: true,
            },
            isa::Instruction::Jump { target: 0, count: 4 },
            isa::Instruction::Exit,
        ]);
        u.reset_sequencer();
        let mut ppcs = Vec::new();
        for col in 0..4 {
            ppcs.push(u.ppc());
            u.execute(&pim_core::Trigger {
                kind: pim_core::TriggerKind::Read,
                row: 0,
                col,
                even_data: pim_core::LaneVec::from_f32([values; 16]),
                odd_data: pim_core::LaneVec::zero(),
            });
        }
        ppcs
    };
    assert_eq!(run(0.0), run(12345.0), "control flow must not depend on data");
}

/// "the AB-PIM mode does not consume power for transferring data from the
/// bank I/O all the way to the I/O circuits that interface with the host
/// processor" (Section III-B): an AB-PIM read returns no external data.
#[test]
fn claim_abpim_no_external_transfer() {
    let mut ch = PimChannel::new(TimingParams::hbm2(), PimConfig::paper());
    let mut now = 0;
    for cmd in conf::enter_ab_sequence()
        .into_iter()
        .chain(conf::set_pim_op_mode_sequence(true))
        .chain([Command::Act { bank: BankAddr::new(0, 0), row: 0 }])
    {
        let at = ch.earliest_issue(&cmd, now);
        ch.issue(&cmd, at).unwrap();
        now = at;
    }
    let cmd = Command::Rd { bank: BankAddr::new(0, 0), col: 0 };
    let at = ch.earliest_issue(&cmd, now);
    let out = ch.issue(&cmd, at).unwrap();
    assert_eq!(out.data, None);
    assert_eq!(ch.mode(), PimMode::AllBankPim);
}

/// "the BA and BG of a given column address are ignored and the same row
/// and column of all the banks are concurrently accessed" (Section III-B):
/// the same AB command addressed to two different banks behaves
/// identically.
#[test]
fn claim_ab_mode_ignores_bank_address() {
    let run = |bank: BankAddr| -> [u8; 32] {
        let mut ch = PimChannel::new(TimingParams::hbm2(), PimConfig::paper());
        let mut now = 0;
        for cmd in conf::enter_ab_sequence() {
            let at = ch.earliest_issue(&cmd, now);
            ch.issue(&cmd, at).unwrap();
            now = at;
        }
        for cmd in [Command::Act { bank, row: 6 }, Command::Wr { bank, col: 3, data: [0x77; 32] }] {
            let at = ch.earliest_issue(&cmd, now);
            ch.issue(&cmd, at).unwrap();
            now = at;
        }
        // Whatever bank the command named, bank (3,3) received the write.
        ch.dram().bank(BankAddr::new(3, 3)).peek_block(6, 3)
    };
    assert_eq!(run(BankAddr::new(0, 0)), [0x77; 32]);
    assert_eq!(run(BankAddr::new(2, 1)), [0x77; 32]);
}

/// "ReLU ... (1) it is simple to implement and fast (i.e., a 2-to-1
/// multiplexer controlled by the sign bit of a given input value)"
/// (Section III-C): exhaustive check that ReLU == sign-bit mux.
#[test]
fn claim_relu_is_a_sign_mux() {
    use pim_fp16::F16;
    for bits in 0u16..=u16::MAX {
        let x = F16::from_bits(bits);
        let want = if bits & 0x8000 != 0 { F16::ZERO } else { x };
        assert_eq!(x.relu().to_bits(), want.to_bits(), "bits {bits:#06x}");
    }
}

/// "an access to HBM transfers a 256-bit data block over 4 64-bit bursts
/// over one pCH" (Section II-B).
#[test]
fn claim_access_granularity() {
    assert_eq!(pim_dram::DATA_BLOCK_BYTES * 8, 256);
    assert_eq!(TimingParams::hbm2().t_bl, 4, "4 bursts");
}

/// "PIM-HBM with 16 banks per pCH can provide 8× higher on-chip compute
/// bandwidth than standard HBM" (Section III-B).
#[test]
fn claim_8x_onchip_bandwidth() {
    let t = TimingParams::hbm2();
    assert_eq!(t.pim_bandwidth_gain(pim_dram::BANKS_PER_PCH), 8.0);
}

/// "the GEMV PIM microkernel consists of only two PIM instructions: (1)
/// MAC ... and (2) JUMP" (Section V-A) — our kernel adds the FILL that
/// streams the input vector (the paper's example elides operand delivery),
/// but the steady-state loop is exactly MAC + JUMP.
#[test]
fn claim_gemv_microkernel_is_mac_plus_jump() {
    let prog = pim_runtime::gemv_microkernel(8, &PimConfig::paper());
    let body: Vec<&isa::Instruction> = prog
        .iter()
        .filter(|i| matches!(i, isa::Instruction::Mac { .. } | isa::Instruction::Jump { .. }))
        .collect();
    assert!(body.len() >= 2, "MAC + JUMP present");
    assert!(matches!(body[0], isa::Instruction::Mac { aam: true, .. }));
    assert!(prog.len() <= 5, "the whole kernel is a handful of instructions");
}
