//! Resilience-subsystem integration tests: the SECDED contract the scrub
//! path relies on, exercised through a real DRAM bank at random
//! addresses, and the determinism contract of seeded fault campaigns
//! across execution backends.

use pim_bench::faults::{report_json, run_campaign, CampaignConfig};
use pim_bench::json;
use pim_dram::ecc::{self, EccWord};
use pim_dram::{Bank, DataBlock};
use pim_host::ExecutionBackend;
use proptest::prelude::*;

/// Stores `data` at (`row`, `col`) of a fresh bank, applies `flips` to
/// the stored copy, then runs the scrub-path decode: read the block back
/// and decode it against the golden check bytes.
fn store_damage_decode(
    row: u32,
    col: u32,
    data: &DataBlock,
    flips: &[u16],
) -> Option<(DataBlock, bool)> {
    let mut bank = Bank::new();
    bank.poke_block(row, col, data);
    let mut raw = bank.peek_block(row, col);
    for &bit in flips {
        raw[(bit / 8) as usize] ^= 1 << (bit % 8);
    }
    bank.poke_block(row, col, &raw);

    let shadow = ecc::encode_block(data).map(|w| w.check);
    let read = bank.peek_block(row, col);
    let words: [EccWord; 4] = std::array::from_fn(|i| {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&read[i * 8..i * 8 + 8]);
        EccWord { data: u64::from_le_bytes(bytes), check: shadow[i] }
    });
    ecc::decode_block(&words)
}

fn block_strategy() -> impl Strategy<Value = DataBlock> {
    proptest::collection::vec(any::<u8>(), 32).prop_map(|v| {
        let mut b = [0u8; 32];
        b.copy_from_slice(&v);
        b
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SECDED half 1: every single-bit fault, at any bank address, is
    /// corrected by the scrub path — and corrected to the original data,
    /// not merely to *something* decodable.
    #[test]
    fn every_single_bit_fault_is_corrected(
        data in block_strategy(),
        row in 0u32..8192,
        col in 0u32..32,
        bit in 0u16..256,
    ) {
        let got = store_damage_decode(row, col, &data, &[bit]);
        let (decoded, corrected) = got.expect("single-bit damage must be correctable");
        prop_assert!(corrected, "a flipped bit must be reported as corrected");
        prop_assert_eq!(decoded, data);
    }

    /// SECDED half 2: every double-bit fault within one codeword is
    /// *detected* — decode refuses rather than miscorrecting to a wrong
    /// block. (This is the fault shape `pim-faults` stuck pairs produce.)
    #[test]
    fn every_double_bit_fault_is_detected_not_miscorrected(
        data in block_strategy(),
        row in 0u32..8192,
        col in 0u32..32,
        word in 0u16..4,
        bit_a in 0u16..64,
        delta in 1u16..64,
    ) {
        let a = word * 64 + bit_a;
        let b = word * 64 + (bit_a + delta) % 64;
        prop_assume!(a != b);
        let got = store_damage_decode(row, col, &data, &[a, b]);
        prop_assert_eq!(got, None, "double-bit damage must be uncorrectable");
    }

    /// One flip per codeword is still fully correctable: SECDED protects
    /// each 64-bit word independently.
    #[test]
    fn one_flip_per_codeword_is_corrected(
        data in block_strategy(),
        bits in proptest::collection::vec(0u16..64, 4),
    ) {
        let flips: Vec<u16> = bits.iter().enumerate().map(|(w, &b)| w as u16 * 64 + b).collect();
        let got = store_damage_decode(0, 0, &data, &flips);
        let (decoded, corrected) = got.expect("one flip per word is correctable");
        prop_assert!(corrected);
        prop_assert_eq!(decoded, data);
    }
}

/// A seeded campaign produces a byte-identical JSON report no matter how
/// many host worker threads drive the channels — the determinism contract
/// `pimfault` ships with.
#[test]
fn seeded_campaign_is_backend_invariant() {
    let base = CampaignConfig {
        seed: 0xDECAF,
        elements: 2048,
        rates: vec![0.0, 1e-3, 1e-2],
        ..CampaignConfig::default()
    };
    let reports: Vec<String> =
        [ExecutionBackend::Sequential, ExecutionBackend::Threads(2), ExecutionBackend::Threads(4)]
            .into_iter()
            .map(|backend| {
                let cfg = CampaignConfig { backend, ..base.clone() };
                let points = run_campaign(&cfg).expect("campaign runs");
                json::to_string(&report_json(&cfg, &points))
            })
            .collect();
    assert_eq!(reports[0], reports[1], "Sequential vs Threads(2)");
    assert_eq!(reports[0], reports[2], "Sequential vs Threads(4)");
}

/// The zero-fault path is observer-free: a campaign at rate 0 reports
/// exactly the cycles and commands of a system with no fault plan
/// installed at all (the perfgate exact-match guarantee, asserted at the
/// campaign level).
#[test]
fn zero_rate_point_matches_uninstrumented_run() {
    let cfg =
        CampaignConfig { seed: 1, elements: 1024, rates: vec![0.0], ..CampaignConfig::default() };
    let a = run_campaign(&cfg).expect("campaign runs");
    let b = run_campaign(&cfg).expect("campaign runs");
    assert_eq!(a, b, "zero-fault campaigns are reproducible");
    assert_eq!(a[0].corrected + a[0].detected + a[0].retries + a[0].quarantined, 0);
    assert_eq!(a[0].wrong_answers, 0);
}
