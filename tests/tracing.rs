//! Request-scoped tracing integration tests: trace contexts minted at
//! admission must survive the whole serving stack — EDF dispatch, the
//! degradation ladder, per-channel recorder buffer swaps under the
//! threaded backend, and the stable merge back — byte-identically, and the
//! cycle-attribution decomposition built from the traced stream must
//! conserve simulated cycles exactly.

use pim_bench::serve::ServeCampaignConfig;
use pim_bench::trace::{run_traced, run_traced_report};
use pim_faults::FaultPlan;
use pim_host::ExecutionBackend;
use pim_obs::{names, Attribution, Event, Recorder, TraceCtx, TraceId};
use pim_runtime::{resilient_add, PimContext, ResilienceConfig};

fn small(backend: ExecutionBackend) -> ServeCampaignConfig {
    ServeCampaignConfig {
        elements: 512,
        requests: 6,
        intervals: vec![],
        fault_rates: vec![],
        backend,
        ..ServeCampaignConfig::default()
    }
}

fn traced_events(backend: ExecutionBackend, interval: u64, rate: f64) -> Vec<Event> {
    let (_, recorder, _) = run_traced_report(&small(backend), interval, rate).expect("traced run");
    recorder.events().expect("vec sink retains events")
}

#[test]
fn request_events_carry_trace_context_end_to_end() {
    let cfg = small(ExecutionBackend::Sequential);
    // Trace ids are minted from the *server's* seed (not the campaign's):
    // the campaign runner drives the server with its default config.
    let server_seed = pim_runtime::ServeConfig::default().seed;
    let (report, recorder, _) = run_traced_report(&cfg, 5_000, 0.0).expect("traced run");
    let events = recorder.events().expect("events");

    // Every request-lifecycle instant is trace-stamped, and the admission →
    // dispatch → launch → done chain is complete for every completed
    // request.
    let req_events: Vec<&Event> = events.iter().filter(|e| e.cat == names::CAT_REQUEST).collect();
    assert!(!req_events.is_empty());
    assert!(req_events.iter().all(|e| e.trace.is_some()), "untraced request event");

    for o in &report.outcomes {
        let stages: Vec<&str> = req_events
            .iter()
            .filter(|e| e.trace.is_some_and(|t| t.trace == o.trace))
            .map(|e| e.name.as_ref())
            .collect();
        assert!(stages.contains(&names::REQ_ADMIT), "{stages:?}");
        assert!(stages.contains(&names::REQ_DISPATCH), "{stages:?}");
        assert!(stages.contains(&names::REQ_LAUNCH), "{stages:?}");
        assert!(stages.contains(&names::REQ_DONE), "{stages:?}");
        // The outcome's trace id is the deterministic mint for its id.
        assert_eq!(o.trace, TraceId::mint(server_seed, o.id as u64));
    }

    // Launch instants run under a *child* span of the request root, so
    // retries are distinguishable; the root span stamps the rest.
    for e in &req_events {
        if e.name != names::REQ_LAUNCH {
            continue;
        }
        let ctx = e.trace.expect("stamped above");
        // mix(trace.0) is the root span; a launch runs under a child.
        assert_ne!(ctx.span.0, pim_obs::trace::mix(ctx.trace.0), "launch on root span");
    }

    // The ambient trace reaches the device layers: command-level events
    // executed on behalf of a request carry its context (joining every
    // simulator event back to a tenant).
    let traced_commands =
        events.iter().filter(|e| e.cat == names::CAT_COMMAND && e.trace.is_some()).count();
    assert!(traced_commands > 0, "no command-level event joined a request");
}

#[test]
fn trace_stamps_survive_buffer_swap_and_merge_byte_identically() {
    let reference = traced_events(ExecutionBackend::Sequential, 5_000, 0.0);
    for workers in [1, 2, 4, 8] {
        let threaded = traced_events(ExecutionBackend::Threads(workers), 5_000, 0.0);
        assert_eq!(
            reference, threaded,
            "event stream (with trace stamps) diverged under {workers} workers"
        );
    }
}

#[test]
fn faulty_run_with_relayouts_and_fallbacks_stays_deterministic() {
    // A fault rate high enough to push requests down the degradation
    // ladder (watchdog cancels, re-layouts, host fallbacks) — the
    // per-channel buffers then carry mid-request trace stamps through
    // quarantine-driven re-planning, and the merge must still be exact.
    let (report, _, _) =
        run_traced_report(&small(ExecutionBackend::Sequential), 2_000, 1e-3).expect("run");
    assert!(
        report.stats.relayouts + report.stats.host_fallbacks + report.stats.watchdog_cancels > 0,
        "fault rate too low to exercise the ladder: {:?}",
        report.stats
    );

    let reference = traced_events(ExecutionBackend::Sequential, 2_000, 1e-3);
    for workers in [2, 4, 8] {
        let threaded = traced_events(ExecutionBackend::Threads(workers), 2_000, 1e-3);
        assert_eq!(reference, threaded, "faulty event stream diverged under {workers} workers");
    }
}

#[test]
fn attribution_conserves_cycles_on_traced_serve_runs() {
    for rate in [0.0, 1e-3] {
        let (report, recorder, channels) =
            run_traced_report(&small(ExecutionBackend::Sequential), 3_000, rate).expect("run");
        let events = recorder.events().expect("events");
        let a = Attribution::from_events(&events, channels, report.end_cycle).expect("attribution");
        a.check_conservation().expect("conservation");
        assert_eq!(a.total(), channels as u64 * report.end_cycle);
        for ch in 0..channels {
            assert_eq!(a.channel_total(ch), report.end_cycle, "channel {ch} leaked cycles");
        }
    }
}

#[test]
fn exported_artifacts_match_across_all_worker_counts() {
    let reference = run_traced(&small(ExecutionBackend::Sequential), 5_000, 0.0).expect("run");
    for workers in [1, 2, 4, 8] {
        let alt = run_traced(&small(ExecutionBackend::Threads(workers)), 5_000, 0.0).expect("run");
        assert_eq!(reference.chrome, alt.chrome, "trace.json differs at {workers} workers");
        assert_eq!(reference.folded, alt.folded, "attrib.folded differs at {workers} workers");
        assert_eq!(
            reference.openmetrics, alt.openmetrics,
            "metrics.om differs at {workers} workers"
        );
    }
}

#[test]
fn resilience_ladder_events_inherit_the_ambient_trace() {
    // Half the channels hard-failed: the ladder retries, quarantines the
    // bad channels, and (quarantine budget exceeded) falls back to the
    // host for the still-wrong blocks.
    let plan = FaultPlan { chan_fail_rate: 0.45, ..FaultPlan::quiet(11) };
    let mut ctx = PimContext::small_system();
    ctx.inject_faults(&plan);
    let recorder = Recorder::vec();
    ctx.enable_profiling(recorder.clone());

    // An ambient trace on the recorder (as the serving layer installs per
    // request) must stamp the ladder's lifecycle events too.
    let ambient = TraceCtx::root(0xABCD, 7, 3);
    recorder.set_trace(Some(ambient));

    let n = 4096;
    let x: Vec<f32> = (0..n).map(|i| (i % 19) as f32 * 0.5).collect();
    let y: Vec<f32> = (0..n).map(|i| (i % 13) as f32 * 0.25).collect();
    let cfg = ResilienceConfig { max_quarantine: 2, ..ResilienceConfig::default() };
    let (out, rep) = resilient_add(&mut ctx, &x, &y, &cfg).expect("resilient add");
    recorder.set_trace(None);
    assert_eq!(out.len(), n);
    assert!(rep.retries > 0, "{rep:?}");
    assert!(!rep.quarantined.is_empty(), "{rep:?}");
    assert!(rep.fallback.is_some(), "{rep:?}");

    let events = recorder.events().expect("events");
    for name in [names::RES_RETRY_EVENT, names::RES_QUARANTINE_EVENT, names::RES_FALLBACK_EVENT] {
        let found: Vec<&Event> = events.iter().filter(|e| e.name == name).collect();
        assert!(!found.is_empty(), "no `{name}` events");
        assert!(found.iter().all(|e| e.trace == Some(ambient)), "`{name}` lost the ambient trace");
    }
}
