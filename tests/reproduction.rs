//! Reproduction regression tests: every headline number of the paper's
//! evaluation, asserted as a band around the measured value. If a change
//! anywhere in the workspace moves a result out of its band, these tests
//! fail — the tables/figures stay reproduced by construction.

use pim_bench::experiments;
use pim_bench::micro::geo_mean;

fn perf_of(rows: &[experiments::Fig10Row], name: &str, batch: usize) -> f64 {
    rows.iter()
        .find(|r| r.name == name && r.batch == batch)
        .unwrap_or_else(|| panic!("row {name} B{batch}"))
        .relative_perf
}

#[test]
fn fig10_microbenchmark_bands() {
    let rows = experiments::fig10();
    // Paper §VII-B: "1.4~11.2× higher performance ... for the
    // microbenchmarks", "improves the performance of GEMV by up to 11.2×",
    // "improves the performance of ADD by only 1.6×".
    assert!((1.2..1.7).contains(&perf_of(&rows, "GEMV1", 1)));
    assert!((10.0..12.5).contains(&perf_of(&rows, "GEMV4", 1)));
    for add in ["ADD1", "ADD2", "ADD3", "ADD4"] {
        let p = perf_of(&rows, add, 1);
        assert!((1.4..1.9).contains(&p), "{add}: {p}");
    }
    // B2: "PIM-HBM improves the performance of GEMV by ... 3.2× for batch
    // ... 2".
    assert!((2.9..3.5).contains(&perf_of(&rows, "GEMV4", 2)));
    // B4: "the processor with HBM begins to outperform".
    assert!(perf_of(&rows, "GEMV1", 4) < 1.0);
    assert!(perf_of(&rows, "GEMV2", 4) < 1.0);
    assert!(perf_of(&rows, "GEMV4", 4) < 1.15, "GEMV4 B4 near parity");
}

#[test]
fn fig10_llc_miss_rates() {
    let rows = experiments::fig10();
    // "LLC miss rates that decrease from almost ~100% to 70–80%".
    let m1 = rows.iter().find(|r| r.name == "GEMV4" && r.batch == 1).unwrap();
    let m4 = rows.iter().find(|r| r.name == "GEMV4" && r.batch == 4).unwrap();
    assert!(m1.llc_miss.unwrap() > 0.95);
    let miss4 = m4.llc_miss.unwrap();
    assert!((0.65..0.85).contains(&miss4), "B4 miss {miss4}");
}

#[test]
fn fig10_application_bands() {
    let rows = experiments::fig10();
    // "For DS2, GNMT, and AlexNet, PIM-HBM gives 3.5×, 1.5×, and 1.4×".
    assert!((3.0..4.0).contains(&perf_of(&rows, "DS2", 1)));
    assert!((1.3..2.1).contains(&perf_of(&rows, "GNMT", 1)));
    assert!((1.1..1.6).contains(&perf_of(&rows, "AlexNet", 1)));
    // "For ResNet-50, PIM-HBM gives the same performance as HBM".
    let resnet = perf_of(&rows, "ResNet-50", 1);
    assert!((0.97..1.03).contains(&resnet), "ResNet parity: {resnet}");
    // "for batch size of 2, PIM-HBM still gives 1.6× ... for DS2".
    assert!((1.4..1.9).contains(&perf_of(&rows, "DS2", 2)));
    // At batch 4 no application regresses ("does not hurt").
    for app in ["DS2", "RNN-T", "GNMT", "AlexNet", "ResNet-50"] {
        let p = perf_of(&rows, app, 4);
        assert!((0.95..1.1).contains(&p), "{app} B4: {p}");
    }
}

#[test]
fn fig11_power_and_energy_headlines() {
    let f = experiments::fig11();
    // "PIM-HBM consume only 5.4% higher power even with 4× higher
    // (on-chip) bandwidth".
    assert!((1.02..1.09).contains(&f.power_ratio), "power ratio {}", f.power_ratio);
    assert_eq!(f.bandwidth_ratio, 4.0);
    // "PIM also reduces the energy per bit transfer by 3.5×".
    assert!((3.2..3.8).contains(&f.energy_per_bit_ratio), "e/bit {}", f.energy_per_bit_ratio);
    // "~10% lower ... if we implemented a feature eliminating [buffer-die
    // I/O toggling]".
    assert!((0.08..0.12).contains(&f.buffer_gating_saving));
    // Transport power collapses; array power scales with operating banks.
    let hbm = &f.bars[0].breakdown;
    let pim = &f.bars[1].breakdown;
    assert_eq!(pim.global_io, 0.0);
    assert_eq!(pim.io_phy, 0.0);
    assert!((pim.cell / hbm.cell - 4.0).abs() < 1e-9);
}

#[test]
fn fig12_energy_efficiency_bands() {
    let rows = experiments::fig12();
    let gain = |name: &str| rows.iter().find(|r| r.name == name).unwrap().pim_efficiency_gain();
    // "For GEMV, PIM-HBM gives 8.25× higher energy efficiency".
    assert!((7.0..11.0).contains(&gain("GEMV")), "GEMV {}", gain("GEMV"));
    // "ADD ... 1.4× improvement".
    assert!((1.3..2.1).contains(&gain("ADD")), "ADD {}", gain("ADD"));
    // "For DS2, GNMT, and AlexNet, PIM-HBM gives 3.2×, 1.38×, and 1.5×".
    assert!((2.6..3.6).contains(&gain("DS2")), "DS2 {}", gain("DS2"));
    assert!((1.2..1.9).contains(&gain("GNMT")), "GNMT {}", gain("GNMT"));
    assert!((1.0..1.7).contains(&gain("AlexNet")), "AlexNet {}", gain("AlexNet"));
    // vs PROC-HBM×4: "2.8×, 1.1×, and 1.3×".
    let x4 = |name: &str| rows.iter().find(|r| r.name == name).unwrap().pim_gain_over_x4();
    assert!((2.0..3.2).contains(&x4("DS2")), "DS2 x4 {}", x4("DS2"));
    assert!((1.0..1.8).contains(&x4("GNMT")), "GNMT x4 {}", x4("GNMT"));
    assert!((1.0..1.7).contains(&x4("AlexNet")), "AlexNet x4 {}", x4("AlexNet"));
}

#[test]
fn fig13_pim_runs_faster_at_lower_power() {
    let (hbm, pim) = experiments::fig13(32);
    let end = |s: &[(f64, f64)]| s.last().unwrap().0;
    let avg = |s: &[(f64, f64)]| s.iter().map(|(_, w)| w).sum::<f64>() / s.len() as f64;
    assert!(end(&pim) < end(&hbm), "PIM DS2 finishes earlier");
    // The paper's Fig. 13 shows PIM at (slightly) lower average power; our
    // calibrated model lands at near-parity (the Fig. 12 ratios pin the
    // PIM-phase power within a few percent of the streaming baseline), so
    // we assert the shape as "no higher than ~5% above the baseline".
    assert!(avg(&pim) <= avg(&hbm) * 1.05, "PIM {} vs HBM {}", avg(&pim), avg(&hbm));
}

#[test]
fn fig14_variant_ordering_and_bands() {
    let (rows, geo) = experiments::fig14();
    let g = |v: &str| geo.iter().find(|(name, _)| *name == v).unwrap().1;
    let base = g("PIM-HBM");
    // 2×: the largest gain (paper ~+40%; we measure ~+26%, see
    // EXPERIMENTS.md).
    let dbl = g("PIM-HBM-2x") / base;
    assert!((1.15..1.5).contains(&dbl), "2x gain {dbl}");
    // 2BA: ~+20% in the paper, driven by ADD.
    let tba = g("PIM-HBM-2BA") / base;
    assert!((1.05..1.3).contains(&tba), "2BA gain {tba}");
    let add_base =
        rows.iter().find(|r| r.variant == "PIM-HBM" && r.workload == "ADD4").unwrap().speedup;
    let add_tba =
        rows.iter().find(|r| r.variant == "PIM-HBM-2BA" && r.workload == "ADD4").unwrap().speedup;
    assert!(add_tba / add_base > 1.3, "2BA is 'useful especially for ADD'");
    // SRW: a GEMV-side gain (paper +25% GEMV / +10% geo; our baseline GEMV
    // is already operand-stream efficient, so the gain is smaller).
    let srw = g("PIM-HBM-SRW") / base;
    assert!((1.0..1.2).contains(&srw), "SRW gain {srw}");
    let gemv_base =
        rows.iter().find(|r| r.variant == "PIM-HBM" && r.workload == "GEMV4").unwrap().speedup;
    let gemv_srw =
        rows.iter().find(|r| r.variant == "PIM-HBM-SRW" && r.workload == "GEMV4").unwrap().speedup;
    assert!(gemv_srw > gemv_base, "SRW must help GEMV");
    // Ordering: 2x >= 2BA >= SRW >= base (the paper's Fig. 14 ordering).
    assert!(g("PIM-HBM-2x") >= g("PIM-HBM-2BA"));
    assert!(g("PIM-HBM-2BA") >= g("PIM-HBM-SRW"));
    assert!(g("PIM-HBM-SRW") >= base);
}

#[test]
fn nofence_band() {
    // "2.2×, 1.9×, and 2.0× higher performance ... for microbenchmarks
    // with batch size of 1, 2, and 4" once fences are removed.
    let gains: Vec<f64> = experiments::nofence().into_iter().map(|(_, g)| g).collect();
    for g in &gains {
        assert!((1.7..2.3).contains(g), "no-fence gain {g}");
    }
    let overall = geo_mean(&gains);
    assert!((1.8..2.1).contains(&overall));
}

#[test]
fn tables_reproduced() {
    let c = experiments::table2();
    assert_eq!((c.mul, c.add, c.mac, c.mad, c.mov), (32, 40, 14, 28, 24));
    let t1 = experiments::table1();
    assert_eq!(t1.len(), 6);
    assert_eq!(t1[3].rel_area, 1.32); // FP16 row
    let t5 = experiments::table5();
    assert!(t5.iter().any(|(_, v)| v.contains("1228.8")));
}
