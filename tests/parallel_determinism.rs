//! The parallel backend's headline guarantee, tested end to end: a kernel
//! run under [`ExecutionBackend::Threads`] with any worker count produces
//! *bit-identical* results to [`ExecutionBackend::Sequential`] — numerics,
//! kernel reports, per-channel controller and device statistics, metrics,
//! and the merged observability event stream.
//!
//! The guarantee holds by construction (each worker owns disjoint channels;
//! merges happen in channel-index order, matching the sequential
//! channel-major loop), and these tests pin it against regressions.

use pim_bench::parallel::synthetic_batches;
use pim_core::PimConfig;
use pim_host::{
    Batch, ExecutionBackend, ExecutionMode, HostConfig, KernelEngine, KernelResult, PimSystem,
};
use pim_obs::Recorder;
use pim_runtime::{PimBlas, PimContext};

const WORKER_COUNTS: [usize; 3] = [2, 4, 8];

fn gemv_inputs(n: usize, k: usize) -> (Vec<f32>, Vec<f32>) {
    let w = (0..n * k).map(|i| ((i * 7 % 41) as f32 - 20.0) / 32.0).collect();
    let x = (0..k).map(|i| ((i * 3 % 17) as f32 - 8.0) / 16.0).collect();
    (w, x)
}

/// Runs a profiled GEMV on the paper system under `backend`; returns the
/// result bits plus everything observable about the run.
fn profiled_gemv(
    backend: ExecutionBackend,
) -> (Vec<u32>, [u64; 5], Vec<pim_obs::Event>, pim_obs::MetricsSnapshot) {
    let (n, k) = (96, 256);
    let (w, x) = gemv_inputs(n, k);
    let mut ctx = PimContext::paper_system();
    ctx.set_backend(backend);
    let recorder = Recorder::vec();
    ctx.enable_profiling(recorder.clone());
    let (y, report) = PimBlas::gemv(&mut ctx, &w, n, k, &x).expect("gemv");
    (
        y.iter().map(|v| v.to_bits()).collect(),
        // Everything in the report except host wall time, which is the one
        // quantity the backend is *allowed* to change.
        [
            report.cycles,
            report.commands,
            report.fences,
            report.pim_triggers,
            report.elements as u64,
        ],
        recorder.events().expect("vec sink retains events"),
        recorder.metrics(),
    )
}

#[test]
fn gemv_is_bit_identical_under_every_worker_count() {
    let (y_seq, rep_seq, ev_seq, m_seq) = profiled_gemv(ExecutionBackend::Sequential);
    assert!(!ev_seq.is_empty());
    for workers in WORKER_COUNTS {
        let (y, rep, ev, m) = profiled_gemv(ExecutionBackend::Threads(workers));
        assert_eq!(y, y_seq, "{workers} workers: numeric result diverged");
        assert_eq!(rep, rep_seq, "{workers} workers: kernel report diverged");
        assert_eq!(ev, ev_seq, "{workers} workers: event stream diverged");
        assert_eq!(m, m_seq, "{workers} workers: metrics diverged");
    }
}

/// Runs the seeded synthetic workload under `backend`; returns the kernel
/// result plus every channel's controller, DRAM, and device statistics.
fn synthetic_run(
    backend: ExecutionBackend,
    per_channel: &[Vec<Batch>],
) -> (KernelResult, Vec<String>) {
    let mut sys = PimSystem::new(HostConfig::paper(), PimConfig::paper());
    sys.set_backend(backend);
    let r = KernelEngine::run_system(&mut sys, per_channel, ExecutionMode::Ordered);
    let per_channel_state: Vec<String> = (0..sys.channel_count())
        .map(|i| {
            let ctrl = sys.channel(i);
            format!("{:?}|{:?}|{:?}", ctrl.stats(), ctrl.sink().stats(), ctrl.sink().dram().stats())
        })
        .collect();
    (r, per_channel_state)
}

#[test]
fn random_workload_leaves_identical_per_channel_state() {
    let per_channel = synthetic_batches(64, 40, 0xDECAF);
    let (r_seq, state_seq) = synthetic_run(ExecutionBackend::Sequential, &per_channel);
    assert!(r_seq.commands > 0);
    for workers in WORKER_COUNTS {
        let (r, state) = synthetic_run(ExecutionBackend::Threads(workers), &per_channel);
        assert_eq!(r, r_seq, "{workers} workers: kernel result diverged");
        for (i, (a, b)) in state.iter().zip(&state_seq).enumerate() {
            assert_eq!(a, b, "{workers} workers: channel {i} state diverged");
        }
    }
}

#[test]
fn partial_channel_coverage_matches_sequential() {
    // Fewer batch lists than channels: the uncovered channels idle but
    // still join the closing barrier under both backends.
    let per_channel = synthetic_batches(5, 12, 3);
    let (r_seq, state_seq) = synthetic_run(ExecutionBackend::Sequential, &per_channel);
    for workers in WORKER_COUNTS {
        let (r, state) = synthetic_run(ExecutionBackend::Threads(workers), &per_channel);
        assert_eq!(r, r_seq, "{workers} workers diverged");
        assert_eq!(state, state_seq);
    }
}

#[test]
fn empty_and_missing_batch_lists_are_no_ops_under_both_backends() {
    for backend in [ExecutionBackend::Sequential, ExecutionBackend::Threads(4)] {
        // Some channels get an explicitly empty list, some get nothing.
        let per_channel = vec![Vec::new(), Vec::new(), Vec::new()];
        let (r, _) = synthetic_run(backend, &per_channel);
        assert_eq!(r.commands, 0, "{backend:?}: no commands from empty lists");
        assert_eq!(r.fences, 0);

        let (r, _) = synthetic_run(backend, &[]);
        assert_eq!(r.commands, 0, "{backend:?}: no commands from no lists");
    }
}

#[test]
fn worker_count_clamps_beyond_channel_count() {
    // More workers than channels must behave like one worker per channel,
    // not panic or leave channels unserved.
    let per_channel = synthetic_batches(3, 6, 11);
    let (r_seq, state_seq) = synthetic_run(ExecutionBackend::Sequential, &per_channel);
    let (r, state) = synthetic_run(ExecutionBackend::Threads(64), &per_channel);
    assert_eq!(r, r_seq);
    assert_eq!(state, state_seq);
}

#[test]
fn repeated_threaded_runs_are_self_consistent() {
    // Thread scheduling varies run to run; results must not.
    let per_channel = synthetic_batches(16, 20, 0xABCD);
    let (r0, state0) = synthetic_run(ExecutionBackend::Threads(4), &per_channel);
    for _ in 0..3 {
        let (r, state) = synthetic_run(ExecutionBackend::Threads(4), &per_channel);
        assert_eq!(r, r0);
        assert_eq!(state, state0);
    }
}
