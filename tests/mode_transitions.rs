//! Integration tests of the Fig. 3 operating-mode machinery driven through
//! the **unmodified** memory controller — the drop-in-replacement claim.

use pim_core::{conf, LaneVec, PimChannel, PimConfig, PimMode};
use pim_dram::{
    BankAddr, Command, CommandSink, ControllerConfig, MemoryController, PseudoChannel, Request,
    TimingParams,
};

/// The same controller type drives a plain HBM2 channel and a PIM channel:
/// the paper's "drop-in replacement of current JEDEC-compliant DRAM with
/// PIM-DRAM for any systems".
#[test]
fn unmodified_controller_drives_both_devices() {
    let cfg = ControllerConfig { refresh_enabled: false, ..Default::default() };

    let mut plain: MemoryController<PseudoChannel> = MemoryController::new(cfg.clone());
    let mut pim: MemoryController<PimChannel> = MemoryController::with_sink(
        cfg.clone(),
        PimChannel::new(TimingParams::hbm2(), PimConfig::paper()),
    );

    // Identical request streams...
    for addr in [0u64, 32, 64, 4096, 8192] {
        plain.enqueue(Request::write(addr, [addr as u8; 32]));
        pim.enqueue(Request::write(addr, [addr as u8; 32]));
    }
    for addr in [0u64, 32, 64, 4096, 8192] {
        plain.enqueue(Request::read(addr));
        pim.enqueue(Request::read(addr));
    }
    let a = plain.run_to_completion();
    let b = pim.run_to_completion();
    // ...produce identical data AND identical timing: in single-bank mode
    // PIM-HBM is indistinguishable from HBM2 ("precisely the same as
    // conventional HBM2").
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.data, y.data);
        assert_eq!(x.issued_at, y.issued_at, "timing must match");
        assert_eq!(x.completed_at, y.completed_at);
    }
}

fn issue_all(ch: &mut PimChannel, cmds: &[Command], mut now: u64) -> u64 {
    for c in cmds {
        let at = ch.earliest_issue(c, now);
        ch.issue(c, at).unwrap_or_else(|e| panic!("{c}: {e}"));
        now = at;
    }
    now
}

#[test]
fn full_mode_cycle_sb_ab_abpim_and_back() {
    let mut ch = PimChannel::new(TimingParams::hbm2(), PimConfig::paper());
    assert_eq!(ch.mode(), PimMode::SingleBank);

    let now = issue_all(&mut ch, &conf::enter_ab_sequence(), 0);
    assert_eq!(ch.mode(), PimMode::AllBank);

    let now = issue_all(&mut ch, &conf::set_pim_op_mode_sequence(true), now);
    assert_eq!(ch.mode(), PimMode::AllBankPim);

    let now = issue_all(&mut ch, &conf::set_pim_op_mode_sequence(false), now);
    assert_eq!(ch.mode(), PimMode::AllBank);

    issue_all(&mut ch, &conf::exit_ab_sequence(), now);
    assert_eq!(ch.mode(), PimMode::SingleBank);
    assert!(ch.dram().all_banks_closed(), "no row-buffer conflicts after exit");
    assert_eq!(ch.stats().mode_transitions, 4);
}

#[test]
fn mode_transitions_cost_only_standard_command_latency() {
    // The paper rejects the MRS approach because of kernel-call overhead;
    // the ACT/PRE sequence costs just a handful of DRAM cycles.
    let mut ch = PimChannel::new(TimingParams::hbm2(), PimConfig::paper());
    let t = ch.timing().clone();
    let end = issue_all(&mut ch, &conf::enter_ab_sequence(), 0);
    // ACT at 0, PRE at tRAS: the transition completes within one row cycle.
    assert_eq!(end, t.t_ras);
}

#[test]
fn sb_mode_traffic_unaffected_after_pim_use() {
    // Run a PIM episode, then verify plain DRAM traffic still works and
    // never issues before all-bank activity ended.
    let mut ch = PimChannel::new(TimingParams::hbm2(), PimConfig::paper());
    let b = BankAddr::new(2, 3);
    let now = issue_all(&mut ch, &conf::enter_ab_sequence(), 0);
    let now = issue_all(
        &mut ch,
        &[
            Command::Act { bank: b, row: 7 },
            Command::Wr { bank: b, col: 0, data: [0x11; 32] },
            Command::Pre { bank: b },
        ],
        now,
    );
    let end_ab = issue_all(&mut ch, &conf::exit_ab_sequence(), now);

    // AB-mode writes broadcast: every bank's row 7 got the block.
    for bank in BankAddr::all() {
        assert_eq!(ch.dram().bank(bank).peek_block(7, 0), [0x11; 32]);
    }

    // Plain single-bank traffic afterwards.
    let at = ch.earliest_issue(&Command::Act { bank: b, row: 9 }, 0);
    assert!(at >= end_ab, "SB command at {at} before AB activity ended ({end_ab})");
    let cmds = [
        Command::Act { bank: b, row: 9 },
        Command::Wr { bank: b, col: 1, data: [0x22; 32] },
        Command::Rd { bank: b, col: 1 },
        Command::Pre { bank: b },
    ];
    let mut now = at;
    let mut seen = None;
    for c in &cmds {
        let t = ch.earliest_issue(c, now);
        let out = ch.issue(c, t).unwrap();
        if out.data.is_some() {
            seen = out.data;
        }
        now = t;
    }
    assert_eq!(seen, Some([0x22; 32]));
}

#[test]
fn registers_are_memory_mapped_per_unit() {
    // Write unit 5's GRF_A[2] through bank 10's GRF row in SB mode and
    // read it back; other units are untouched.
    let mut ch = PimChannel::new(TimingParams::hbm2(), PimConfig::paper());
    let bank10 = BankAddr::from_flat_index(10); // unit 5's even bank
    let block = LaneVec::from_f32([6.5; 16]).to_block();
    let now = issue_all(
        &mut ch,
        &[
            Command::Act { bank: bank10, row: conf::GRF_ROW },
            Command::Wr { bank: bank10, col: 2, data: block },
        ],
        0,
    );
    // Read back over the same mapping.
    let at = ch.earliest_issue(&Command::Rd { bank: bank10, col: 2 }, now);
    let out = ch.issue(&Command::Rd { bank: bank10, col: 2 }, at).unwrap();
    assert_eq!(out.data, Some(block));
    assert_eq!(ch.unit(5).grf_a().read(2).to_f32(), [6.5; 16]);
    assert_eq!(ch.unit(4).grf_a().read(2), LaneVec::zero());
}
