//! Full-stack observability tests: a profiled GEMV must light up every
//! instrumented layer (engine fences, controller row classification, device
//! mode transitions, bank residency), nest its spans op → batch → command,
//! export valid Chrome trace JSON — and change nothing about the simulated
//! cycles (zero observer effect).

use pim_bench::profile::{profile_gemv, render_profile};
use pim_obs::{check_nesting, names, Recorder};
use pim_runtime::{PimBlas, PimContext};

fn gemv_inputs(n: usize, k: usize) -> (Vec<f32>, Vec<f32>) {
    let w = (0..n * k).map(|i| ((i * 7 % 41) as f32 - 20.0) / 32.0).collect();
    let x = (0..k).map(|i| ((i * 3 % 17) as f32 - 8.0) / 16.0).collect();
    (w, x)
}

#[test]
fn profiled_gemv_reaches_every_layer() {
    let run = profile_gemv(96, 256).expect("gemv");
    let m = run.recorder.metrics().registry;

    // Host engine: fenced execution must stall on fences.
    assert!(m.counter(names::ENGINE_FENCES) > 0);
    assert!(m.counter(names::ENGINE_FENCE_STALL_CYCLES) > 0, "fences must cost cycles");
    assert_eq!(m.counter(names::ENGINE_FENCES), run.report.fences);

    // Controller: a multi-row GEMV reopens rows on the raw PIM path.
    assert!(m.counter(names::CTRL_RAW_COMMANDS) > 0);
    assert!(m.counter(names::CTRL_ROW_CONFLICT) > 0, "multi-row GEMV must conflict");
    assert!(m.counter(names::CTRL_ROW_HIT) > 0);

    // Device: SB -> AB -> AB-PIM round trips and triggers.
    assert!(m.counter(names::DEV_MODE_TRANSITIONS) >= 4);
    assert_eq!(m.counter(names::DEV_PIM_TRIGGERS), run.report.pim_triggers);
    assert!(m.counter(names::DEV_CRF_LOADS) > 0);

    // Banks: residency gauges cover open and closed time.
    let open = m.gauge(names::BANK_OPEN_CYCLES).expect("open gauge");
    let closed = m.gauge(names::BANK_CLOSED_CYCLES).expect("closed gauge");
    assert!(open > 0.0 && closed > 0.0);

    // The rendered table carries the acceptance-criteria lines.
    let table = render_profile(&run.recorder.metrics());
    for needle in ["row hit rate", "fence stall cycles", "bank open cycles", "bank closed cycles"] {
        assert!(table.contains(needle), "missing `{needle}` in:\n{table}");
    }
}

#[test]
fn event_stream_nests_op_kernel_command_three_deep() {
    let run = profile_gemv(64, 128).expect("gemv");
    let events = run.recorder.events().expect("vec sink retains events");
    assert!(!events.is_empty());

    // Spans balance per scope with monotone timestamps, and the deepest
    // nesting reaches op -> batch -> command (>= 3 levels).
    let depth = check_nesting(&events).expect("events must nest");
    assert!(depth >= 3, "nesting depth {depth} < 3");

    // All three categories appear in one stream.
    for cat in [names::CAT_OP, names::CAT_BATCH, names::CAT_COMMAND, names::CAT_MODE] {
        assert!(events.iter().any(|e| e.cat == cat), "no `{cat}` events");
    }
}

#[test]
fn chrome_trace_export_is_valid_json() {
    let run = profile_gemv(32, 64).expect("gemv");
    let events = run.recorder.events().expect("events");
    let json = pim_obs::chrome::chrome_trace_json(&events);
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"traceEvents\""));
    check_json_syntax(&json).expect("chrome trace must be syntactically valid JSON");
}

/// Zero observer effect: the same workload must produce identical results
/// and identical cycle counts whether no recorder, a counting recorder, or
/// a retaining recorder is attached.
#[test]
fn instrumentation_has_zero_observer_effect() {
    let (n, k) = (80, 96);
    let (w, x) = gemv_inputs(n, k);

    let mut plain = PimContext::small_system();
    let (y0, r0) = PimBlas::gemv(&mut plain, &w, n, k, &x).unwrap();

    let mut counted = PimContext::small_system();
    counted.enable_profiling(Recorder::counting());
    let (y1, r1) = PimBlas::gemv(&mut counted, &w, n, k, &x).unwrap();

    let mut recorded = PimContext::small_system();
    recorded.enable_profiling(Recorder::vec());
    let (y2, r2) = PimBlas::gemv(&mut recorded, &w, n, k, &x).unwrap();

    assert_eq!(y0, y1);
    assert_eq!(y0, y2);
    assert_eq!(r0.cycles, r1.cycles, "counting sink changed cycle counts");
    assert_eq!(r0.cycles, r2.cycles, "vec sink changed cycle counts");
    assert_eq!(r0.commands, r1.commands);
    assert_eq!(plain.sys.max_now(), counted.sys.max_now());
    assert_eq!(plain.sys.max_now(), recorded.sys.max_now());
}

/// The registry table in `docs/OBSERVABILITY.md` must cover every dotted
/// name constant in `pim_obs::names` — the doc is asserted against the
/// source so it cannot silently rot.
#[test]
fn docs_registry_table_covers_every_name_constant() {
    let src = include_str!("../crates/obs/src/names.rs");
    let doc = include_str!("../docs/OBSERVABILITY.md");

    // Collect the string value of every `pub const NAME: &str = "...";`
    // whose value is a dotted metric/event name.
    let mut names: Vec<&str> = Vec::new();
    for line in src.lines() {
        let Some(rest) = line.trim_start().strip_prefix("pub const ") else { continue };
        let Some((_, value)) = rest.split_once('=') else { continue };
        let value = value.trim().trim_end_matches(';').trim();
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            continue;
        };
        if value.contains('.') {
            names.push(value);
        }
    }
    assert!(names.len() >= 30, "expected a full registry, found {} names", names.len());

    // Each name must appear as `name` inside a markdown table row.
    let table_rows: Vec<&str> =
        doc.lines().filter(|l| l.starts_with('|') && l.contains('`')).collect();
    for name in names {
        let needle = format!("`{name}`");
        assert!(
            table_rows.iter().any(|row| row.contains(&needle)),
            "`{name}` (pim_obs::names) is missing from the registry table in docs/OBSERVABILITY.md"
        );
    }
}

/// Adversarially-named events must round-trip the Chrome exporter into
/// syntactically valid JSON (escaping audit for quotes, backslashes, and
/// control characters — with trace args in play).
#[test]
fn chrome_export_survives_adversarial_names_and_trace_args() {
    use pim_obs::{Event, Scope, TraceCtx};
    let nasty = [
        "quote\"inside",
        "back\\slash",
        "new\nline",
        "tab\tchar",
        "\u{1}control",
        "unicode≠ascii",
        "}]\",\"pwn\":\"",
    ];
    let mut events = Vec::new();
    for (i, name) in nasty.iter().enumerate() {
        let ts = i as u64 * 10;
        events.push(Event::begin(ts, name.to_string(), names::CAT_BATCH, Scope::channel(1)));
        events.push(
            Event::instant(ts + 1, name.to_string(), names::CAT_REQUEST, Scope::channel(1))
                .with_trace(TraceCtx::root(7, i as u64, 2)),
        );
        events.push(Event::end(ts + 2, name.to_string(), names::CAT_BATCH, Scope::channel(1)));
    }
    let json = pim_obs::chrome::chrome_trace_json(&events);
    check_json_syntax(&json).expect("adversarial names must stay valid JSON");
}

/// A minimal recursive-descent JSON syntax checker — enough to validate the
/// exporter's output without pulling in a JSON dependency.
fn check_json_syntax(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<(), String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => parse_seq(b, i, b'}', true),
        Some(b'[') => parse_seq(b, i, b']', false),
        Some(b'"') => parse_string(b, i),
        Some(b't') => parse_lit(b, i, "true"),
        Some(b'f') => parse_lit(b, i, "false"),
        Some(b'n') => parse_lit(b, i, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            *i += 1;
            while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
                *i += 1;
            }
            Ok(())
        }
        other => Err(format!("unexpected {other:?} at byte {i}")),
    }
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &str) -> Result<(), String> {
    if b[*i..].starts_with(lit.as_bytes()) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {i}"))
    }
}

fn parse_seq(b: &[u8], i: &mut usize, close: u8, keyed: bool) -> Result<(), String> {
    *i += 1; // opening bracket
    skip_ws(b, i);
    if b.get(*i) == Some(&close) {
        *i += 1;
        return Ok(());
    }
    loop {
        if keyed {
            skip_ws(b, i);
            parse_string(b, i)?;
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return Err(format!("expected `:` at byte {i}"));
            }
            *i += 1;
        }
        parse_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(c) if *c == close => {
                *i += 1;
                return Ok(());
            }
            other => return Err(format!("expected `,` or close, got {other:?} at byte {i}")),
        }
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at byte {i}"));
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => *i += 2,
            0x00..=0x1f => return Err(format!("raw control char at byte {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".to_string())
}
